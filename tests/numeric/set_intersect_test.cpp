// The set-intersection kernel family contract: every kernel — scalar merge,
// galloping, SIMD (SSE/AVX2 when compiled in), and the auto dispatcher —
// returns the identical match-position sequence as a trivial reference
// two-pointer, on every input shape: empty sides, disjoint ranges, full
// overlap, interleaved runs, randomized sorted-unique rows at skew ratios
// from 1:1 to 1:1000, and every SIMD block-tail residue. The gather build's
// bitwise-determinism claim rests on this interchangeability.
#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <vector>

#include "numeric/set_intersect.hpp"
#include "util/rng.hpp"

namespace lc::numeric {
namespace {

/// Reference: textbook two-pointer merge, no early exit, no blocks.
std::vector<MatchPos> reference_intersect(std::span<const std::uint32_t> a,
                                          std::span<const std::uint32_t> b) {
  std::vector<MatchPos> out;
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      out.push_back(MatchPos{static_cast<std::uint32_t>(i), static_cast<std::uint32_t>(j)});
      ++i;
      ++j;
    }
  }
  return out;
}

/// Sorted duplicate-free row of `size` values with gap distribution
/// controlled by `max_gap` (gap 1 keeps runs contiguous, large gaps spread).
std::vector<std::uint32_t> make_row(Rng& rng, std::size_t size, std::uint32_t max_gap,
                                    std::uint32_t start = 0) {
  std::vector<std::uint32_t> row;
  row.reserve(size);
  std::uint32_t value = start;
  for (std::size_t i = 0; i < size; ++i) {
    value += 1 + static_cast<std::uint32_t>(rng.next_below(max_gap));
    row.push_back(value);
  }
  return row;
}

std::vector<IntersectKernel> kernels_under_test() {
  return {IntersectKernel::kAuto, IntersectKernel::kScalar, IntersectKernel::kGalloping,
          IntersectKernel::kSimd};
}

void expect_all_kernels_match(std::span<const std::uint32_t> a,
                              std::span<const std::uint32_t> b) {
  const std::vector<MatchPos> expected = reference_intersect(a, b);
  std::vector<MatchPos> got(std::min(a.size(), b.size()) + 1);
  for (const IntersectKernel kernel : kernels_under_test()) {
    const std::size_t n = set_intersect_posns(a, b, got.data(), kernel);
    ASSERT_EQ(n, expected.size())
        << kernel_name(kernel) << " |a|=" << a.size() << " |b|=" << b.size();
    for (std::size_t x = 0; x < n; ++x) {
      ASSERT_EQ(got[x], expected[x])
          << kernel_name(kernel) << " at match " << x << " |a|=" << a.size()
          << " |b|=" << b.size();
    }
  }
}

TEST(SetIntersect, EmptyAndTrivialInputs) {
  const std::vector<std::uint32_t> some = {1, 5, 9};
  const std::vector<std::uint32_t> empty;
  expect_all_kernels_match(empty, empty);
  expect_all_kernels_match(some, empty);
  expect_all_kernels_match(empty, some);
  expect_all_kernels_match(some, some);  // full overlap
}

TEST(SetIntersect, DisjointRangesAndEarlyExit) {
  Rng rng(11);
  const auto low = make_row(rng, 100, 3, 0);
  const auto high = make_row(rng, 100, 3, 100000);
  expect_all_kernels_match(low, high);   // a exhausts first
  expect_all_kernels_match(high, low);   // b exhausts first
}

TEST(SetIntersect, InterleavedNoMatches) {
  // Evens vs odds: maximal pointer ping-pong, zero matches.
  std::vector<std::uint32_t> evens;
  std::vector<std::uint32_t> odds;
  for (std::uint32_t i = 0; i < 200; ++i) {
    evens.push_back(2 * i);
    odds.push_back(2 * i + 1);
  }
  expect_all_kernels_match(evens, odds);
}

TEST(SetIntersect, RandomizedShapesAndSkews) {
  Rng rng(202);
  // Sizes sweep the SIMD block residues (4- and 8-lane tails) and the
  // galloping ratio threshold; gaps control overlap density.
  const std::size_t sizes[] = {1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31, 33, 64, 100, 257};
  for (const std::size_t na : sizes) {
    for (const std::size_t nb : sizes) {
      for (const std::uint32_t gap : {2u, 8u, 64u}) {
        const auto a = make_row(rng, na, gap);
        const auto b = make_row(rng, nb, gap);
        expect_all_kernels_match(a, b);
      }
    }
  }
}

TEST(SetIntersect, ExtremeSkewBothOrientations) {
  Rng rng(303);
  const auto small = make_row(rng, 9, 400);
  const auto big = make_row(rng, 3000, 2);  // overlapping value range
  // Galloping iterates the smaller side whichever argument it is; positions
  // must come back in the caller's (a, b) orientation either way.
  expect_all_kernels_match(small, big);
  expect_all_kernels_match(big, small);
}

TEST(SetIntersect, MatchesAscendInBothCoordinates) {
  Rng rng(404);
  const auto a = make_row(rng, 500, 4);
  const auto b = make_row(rng, 500, 4);
  std::vector<MatchPos> out(500);
  for (const IntersectKernel kernel : kernels_under_test()) {
    const std::size_t n = set_intersect_posns(a, b, out.data(), kernel);
    ASSERT_GT(n, 0u) << kernel_name(kernel);
    for (std::size_t x = 1; x < n; ++x) {
      EXPECT_LT(out[x - 1].a_pos, out[x].a_pos) << kernel_name(kernel);
      EXPECT_LT(out[x - 1].b_pos, out[x].b_pos) << kernel_name(kernel);
      EXPECT_EQ(a[out[x].a_pos], b[out[x].b_pos]) << kernel_name(kernel);
    }
  }
}

TEST(SetIntersect, ForcedSimdDegradesGracefully) {
  // kSimd must be safe to request unconditionally: without compiled/runtime
  // SIMD support it falls back to the scalar merge, same output.
  Rng rng(505);
  const auto a = make_row(rng, 123, 3);
  const auto b = make_row(rng, 77, 3);
  expect_all_kernels_match(a, b);
  if (!simd_compiled()) {
    EXPECT_FALSE(simd_available());
  }
}

TEST(SetIntersect, KernelNamesAreStable) {
  EXPECT_STREQ(kernel_name(IntersectKernel::kAuto), "auto");
  EXPECT_STREQ(kernel_name(IntersectKernel::kScalar), "scalar");
  EXPECT_STREQ(kernel_name(IntersectKernel::kGalloping), "galloping");
  EXPECT_STREQ(kernel_name(IntersectKernel::kSimd), "simd");
}

}  // namespace
}  // namespace lc::numeric
