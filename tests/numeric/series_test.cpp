#include "numeric/series.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace lc::numeric {
namespace {

TEST(NormalizeUnit, SpansZeroToOne) {
  const std::vector<double> v{2.0, 6.0, 4.0};
  const std::vector<double> n = normalize_unit(v);
  ASSERT_EQ(n.size(), 3u);
  EXPECT_DOUBLE_EQ(n[0], 0.0);
  EXPECT_DOUBLE_EQ(n[1], 1.0);
  EXPECT_DOUBLE_EQ(n[2], 0.5);
}

TEST(NormalizeUnit, ConstantSeriesMapsToZeros) {
  const std::vector<double> n = normalize_unit({3.0, 3.0, 3.0});
  for (double v : n) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(NormalizeUnit, EmptyInput) { EXPECT_TRUE(normalize_unit({}).empty()); }

TEST(NormalizedLogSeries, AppliesPaperTransform) {
  Series s;
  s.x = {1.0, 10.0, 100.0};
  s.y = {100.0, 50.0, 0.0};
  const Series out = normalized_log_series(s);
  // log x = 0, ln10, 2 ln10 -> normalized 0, 0.5, 1.
  EXPECT_NEAR(out.x[0], 0.0, 1e-12);
  EXPECT_NEAR(out.x[1], 0.5, 1e-12);
  EXPECT_NEAR(out.x[2], 1.0, 1e-12);
  EXPECT_NEAR(out.y[0], 1.0, 1e-12);
  EXPECT_NEAR(out.y[2], 0.0, 1e-12);
}

TEST(NormalizedLogSeriesDeathTest, RejectsNonPositiveX) {
  Series s;
  s.x = {0.0, 1.0};
  s.y = {1.0, 2.0};
  EXPECT_DEATH(normalized_log_series(s), "positive");
}

TEST(Downsample, KeepsEndpointsAndCount) {
  Series s;
  for (int i = 0; i < 1000; ++i) {
    s.x.push_back(i);
    s.y.push_back(2 * i);
  }
  const Series out = downsample(s, 11);
  ASSERT_EQ(out.size(), 11u);
  EXPECT_DOUBLE_EQ(out.x.front(), 0.0);
  EXPECT_DOUBLE_EQ(out.x.back(), 999.0);
}

TEST(Downsample, NoOpWhenSmall) {
  Series s;
  s.x = {1, 2, 3};
  s.y = {4, 5, 6};
  const Series out = downsample(s, 10);
  EXPECT_EQ(out.size(), 3u);
}

TEST(MeanAbsDifference, Basics) {
  EXPECT_DOUBLE_EQ(mean_abs_difference({1.0, 2.0}, {1.5, 1.0}), 0.75);
  EXPECT_DOUBLE_EQ(mean_abs_difference({1.0}, {1.0}), 0.0);
}

TEST(Interpolate, LinearBetweenSamples) {
  Series s;
  s.x = {0.0, 1.0, 3.0};
  s.y = {0.0, 10.0, 30.0};
  EXPECT_DOUBLE_EQ(interpolate(s, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(interpolate(s, 2.0), 20.0);
}

TEST(Interpolate, ClampsOutOfRange) {
  Series s;
  s.x = {1.0, 2.0};
  s.y = {7.0, 9.0};
  EXPECT_DOUBLE_EQ(interpolate(s, 0.0), 7.0);
  EXPECT_DOUBLE_EQ(interpolate(s, 5.0), 9.0);
}

}  // namespace
}  // namespace lc::numeric
