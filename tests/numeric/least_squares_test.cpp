#include "numeric/least_squares.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace lc::numeric {
namespace {

TEST(SolveLinearSystem, Identity) {
  std::vector<double> a = {1, 0, 0, 1};
  std::vector<double> b = {3, -2};
  ASSERT_TRUE(solve_linear_system(a, b, 2));
  EXPECT_DOUBLE_EQ(b[0], 3.0);
  EXPECT_DOUBLE_EQ(b[1], -2.0);
}

TEST(SolveLinearSystem, General3x3) {
  // A = [[2,1,1],[1,3,2],[1,0,0]], x = [1,2,3] -> b = [7, 13, 1]
  std::vector<double> a = {2, 1, 1, 1, 3, 2, 1, 0, 0};
  std::vector<double> b = {7, 13, 1};
  ASSERT_TRUE(solve_linear_system(a, b, 3));
  EXPECT_NEAR(b[0], 1.0, 1e-12);
  EXPECT_NEAR(b[1], 2.0, 1e-12);
  EXPECT_NEAR(b[2], 3.0, 1e-12);
}

TEST(SolveLinearSystem, NeedsPivoting) {
  // Zero on the leading diagonal forces a row swap.
  std::vector<double> a = {0, 1, 1, 0};
  std::vector<double> b = {5, 7};
  ASSERT_TRUE(solve_linear_system(a, b, 2));
  EXPECT_NEAR(b[0], 7.0, 1e-12);
  EXPECT_NEAR(b[1], 5.0, 1e-12);
}

TEST(SolveLinearSystem, SingularFails) {
  std::vector<double> a = {1, 2, 2, 4};
  std::vector<double> b = {1, 2};
  EXPECT_FALSE(solve_linear_system(a, b, 2));
}

TEST(LevenbergMarquardt, FitsLineExactly) {
  // y = 3x + 1 over 10 points; residuals r_i = p0*x_i + p1 - y_i.
  std::vector<double> xs(10);
  std::vector<double> ys(10);
  for (int i = 0; i < 10; ++i) {
    xs[static_cast<std::size_t>(i)] = i;
    ys[static_cast<std::size_t>(i)] = 3.0 * i + 1.0;
  }
  auto residual_fn = [&](const std::vector<double>& p, std::vector<double>& r,
                         std::vector<double>* jac) {
    for (std::size_t i = 0; i < xs.size(); ++i) {
      r[i] = p[0] * xs[i] + p[1] - ys[i];
      if (jac != nullptr) {
        (*jac)[i * 2 + 0] = xs[i];
        (*jac)[i * 2 + 1] = 1.0;
      }
    }
  };
  const LeastSquaresResult result = levenberg_marquardt(residual_fn, {0.0, 0.0}, xs.size());
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(result.params[0], 3.0, 1e-8);
  EXPECT_NEAR(result.params[1], 1.0, 1e-8);
  EXPECT_LT(result.cost, 1e-16);
}

TEST(LevenbergMarquardt, FitsExponentialDecay) {
  // y = 2 e^{-0.7 x}; nonlinear in p1.
  std::vector<double> xs;
  std::vector<double> ys;
  for (int i = 0; i <= 20; ++i) {
    const double x = 0.25 * i;
    xs.push_back(x);
    ys.push_back(2.0 * std::exp(-0.7 * x));
  }
  auto residual_fn = [&](const std::vector<double>& p, std::vector<double>& r,
                         std::vector<double>* jac) {
    for (std::size_t i = 0; i < xs.size(); ++i) {
      const double e = std::exp(p[1] * xs[i]);
      r[i] = p[0] * e - ys[i];
      if (jac != nullptr) {
        (*jac)[i * 2 + 0] = e;
        (*jac)[i * 2 + 1] = p[0] * xs[i] * e;
      }
    }
  };
  const LeastSquaresResult result = levenberg_marquardt(residual_fn, {1.0, -0.1}, xs.size());
  EXPECT_NEAR(result.params[0], 2.0, 1e-5);
  EXPECT_NEAR(result.params[1], -0.7, 1e-5);
}

TEST(LevenbergMarquardt, NoisyDataStillClose) {
  // Deterministic pseudo-noise on a line.
  std::vector<double> xs;
  std::vector<double> ys;
  for (int i = 0; i < 50; ++i) {
    const double x = i * 0.1;
    const double noise = 0.01 * ((i * 2654435761u % 100) / 50.0 - 1.0);
    xs.push_back(x);
    ys.push_back(-1.5 * x + 4.0 + noise);
  }
  auto residual_fn = [&](const std::vector<double>& p, std::vector<double>& r,
                         std::vector<double>* jac) {
    for (std::size_t i = 0; i < xs.size(); ++i) {
      r[i] = p[0] * xs[i] + p[1] - ys[i];
      if (jac != nullptr) {
        (*jac)[i * 2 + 0] = xs[i];
        (*jac)[i * 2 + 1] = 1.0;
      }
    }
  };
  const LeastSquaresResult result = levenberg_marquardt(residual_fn, {0.0, 0.0}, xs.size());
  EXPECT_NEAR(result.params[0], -1.5, 0.02);
  EXPECT_NEAR(result.params[1], 4.0, 0.02);
}

}  // namespace
}  // namespace lc::numeric
