#include "numeric/sigmoid.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace lc::numeric {
namespace {

TEST(SigmoidEval, PaperParametersShape) {
  // With the paper's parameters (a=-1, b=0.48, c=1, k=10), the curve starts
  // near 1 for small x and falls toward 0 for large x — the normalized
  // cluster-count shape of Fig. 2(2).
  const SigmoidParams p{};  // defaults are the paper's values
  EXPECT_NEAR(sigmoid_eval(p, 0.05), 1.0, 0.05);
  EXPECT_NEAR(sigmoid_eval(p, 20.0), 0.0, 0.05);
  // Midpoint: log x = b -> y = c + a/2 = 0.5.
  EXPECT_NEAR(sigmoid_eval(p, std::exp(0.48)), 0.5, 1e-12);
}

TEST(SigmoidEval, MonotoneDecreasingForNegativeA) {
  const SigmoidParams p{};
  double prev = sigmoid_eval(p, 0.01);
  for (double x = 0.02; x < 50.0; x *= 1.3) {
    const double y = sigmoid_eval(p, x);
    EXPECT_LE(y, prev + 1e-12);
    prev = y;
  }
}

TEST(SigmoidGradient, MatchesFiniteDifferences) {
  const SigmoidParams p{-0.8, 0.3, 0.9, 6.0};
  const double eps = 1e-6;
  for (double x : {0.1, 0.5, 1.0, 3.0, 10.0}) {
    const auto grad = sigmoid_gradient(p, x);
    // a
    {
      SigmoidParams hi = p;
      hi.a += eps;
      SigmoidParams lo = p;
      lo.a -= eps;
      EXPECT_NEAR(grad[0], (sigmoid_eval(hi, x) - sigmoid_eval(lo, x)) / (2 * eps), 1e-5);
    }
    // b
    {
      SigmoidParams hi = p;
      hi.b += eps;
      SigmoidParams lo = p;
      lo.b -= eps;
      EXPECT_NEAR(grad[1], (sigmoid_eval(hi, x) - sigmoid_eval(lo, x)) / (2 * eps), 1e-5);
    }
    // c
    {
      SigmoidParams hi = p;
      hi.c += eps;
      SigmoidParams lo = p;
      lo.c -= eps;
      EXPECT_NEAR(grad[2], (sigmoid_eval(hi, x) - sigmoid_eval(lo, x)) / (2 * eps), 1e-5);
    }
    // k
    {
      SigmoidParams hi = p;
      hi.k += eps;
      SigmoidParams lo = p;
      lo.k -= eps;
      EXPECT_NEAR(grad[3], (sigmoid_eval(hi, x) - sigmoid_eval(lo, x)) / (2 * eps), 1e-5);
    }
  }
}

TEST(FitSigmoid, RecoversKnownParameters) {
  const SigmoidParams truth{-1.0, 0.48, 1.0, 10.0};
  std::vector<double> x;
  std::vector<double> y;
  for (int i = 1; i <= 200; ++i) {
    const double xi = 0.02 * i;
    x.push_back(xi);
    y.push_back(sigmoid_eval(truth, xi));
  }
  const SigmoidFit fit = fit_sigmoid(x, y, SigmoidParams{-0.5, 0.2, 0.8, 5.0});
  EXPECT_LT(fit.rmse, 1e-6);
  EXPECT_NEAR(fit.params.a, truth.a, 1e-3);
  EXPECT_NEAR(fit.params.b, truth.b, 1e-3);
  EXPECT_NEAR(fit.params.c, truth.c, 1e-3);
  EXPECT_NEAR(fit.params.k, truth.k, 1e-2);
}

TEST(FitSigmoid, HandlesNoise) {
  const SigmoidParams truth{-1.0, 0.0, 1.0, 4.0};
  std::vector<double> x;
  std::vector<double> y;
  for (int i = 1; i <= 100; ++i) {
    const double xi = 0.05 * i;
    const double noise = 0.005 * (((i * 131) % 17) / 8.5 - 1.0);
    x.push_back(xi);
    y.push_back(sigmoid_eval(truth, xi) + noise);
  }
  const SigmoidFit fit = fit_sigmoid(x, y);
  EXPECT_LT(fit.rmse, 0.01);
  EXPECT_NEAR(fit.params.k, 4.0, 0.5);
}

TEST(FitSigmoidDeathTest, RejectsNonPositiveX) {
  std::vector<double> x{0.5, 1.0, -1.0, 2.0};
  std::vector<double> y{1.0, 0.8, 0.5, 0.1};
  EXPECT_DEATH(fit_sigmoid(x, y), "positive");
}

TEST(FitSigmoidDeathTest, RejectsTooFewSamples) {
  std::vector<double> x{0.5, 1.0, 2.0};
  std::vector<double> y{1.0, 0.8, 0.5};
  EXPECT_DEATH(fit_sigmoid(x, y), "at least 4");
}

}  // namespace
}  // namespace lc::numeric
