#include "parallel/thread_pool.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <functional>
#include <numeric>
#include <random>
#include <stdexcept>
#include <utility>
#include <vector>

namespace lc::parallel {
namespace {

TEST(ThreadPool, RunsAllTasksInBatch) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 100; ++i) tasks.push_back([&counter] { counter.fetch_add(1); });
  pool.run_batch(tasks);
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, EmptyBatchIsNoOp) {
  ThreadPool pool(2);
  pool.run_batch({});
}

TEST(ThreadPool, SequentialBatchesReuseWorkers) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 10; ++i) tasks.push_back([&counter] { counter.fetch_add(1); });
  for (int round = 0; round < 20; ++round) pool.run_batch(tasks);
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPool, SingleWorkerStillCompletes) {
  ThreadPool pool(1);
  std::atomic<int> counter{0};
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 17; ++i) tasks.push_back([&counter] { counter.fetch_add(1); });
  pool.run_batch(tasks);
  EXPECT_EQ(counter.load(), 17);
}

TEST(SplitRange, EvenSplit) {
  const auto bounds = split_range(100, 4);
  ASSERT_EQ(bounds.size(), 5u);
  EXPECT_EQ(bounds[0], 0u);
  EXPECT_EQ(bounds[4], 100u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(bounds[static_cast<std::size_t>(i) + 1] - bounds[static_cast<std::size_t>(i)], 25u);
}

TEST(SplitRange, RemainderSpreadOverLeadingParts) {
  const auto bounds = split_range(10, 3);
  EXPECT_EQ(bounds[1] - bounds[0], 4u);
  EXPECT_EQ(bounds[2] - bounds[1], 3u);
  EXPECT_EQ(bounds[3] - bounds[2], 3u);
}

TEST(SplitRange, MorePartsThanItems) {
  const auto bounds = split_range(2, 5);
  EXPECT_EQ(bounds.back(), 2u);
  std::size_t nonempty = 0;
  for (std::size_t i = 0; i < 5; ++i) nonempty += (bounds[i + 1] > bounds[i]) ? 1 : 0;
  EXPECT_EQ(nonempty, 2u);
}

TEST(ParallelForBlocks, CoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  parallel_for_blocks(pool, 1000, [&hits](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForBlocks, ZeroLengthRange) {
  ThreadPool pool(2);
  bool called = false;
  parallel_for_blocks(pool, 0, [&called](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(TournamentReduce, SumsAllItemsIntoItemZero) {
  for (std::size_t count : {1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u, 13u, 16u}) {
    ThreadPool pool(4);
    std::vector<std::int64_t> values(count);
    std::iota(values.begin(), values.end(), 1);  // 1..count
    tournament_reduce(pool, count, [&values](std::size_t dst, std::size_t src) {
      values[dst] += values[src];
      values[src] = 0;
    });
    const std::int64_t expected =
        static_cast<std::int64_t>(count) * static_cast<std::int64_t>(count + 1) / 2;
    EXPECT_EQ(values[0], expected) << "count=" << count;
  }
}

TEST(TournamentReduce, RespectsFinalFanIn) {
  // With final_fan_in = 1000 everything merges in the single sequential pass.
  ThreadPool pool(2);
  std::vector<int> values(6, 1);
  int merges = 0;
  tournament_reduce(
      pool, 6,
      [&values, &merges](std::size_t dst, std::size_t src) {
        values[dst] += values[src];
        ++merges;
      },
      1000);
  EXPECT_EQ(values[0], 6);
  EXPECT_EQ(merges, 5);
}

TEST(TournamentReduce, SingleItemNoMerge) {
  ThreadPool pool(2);
  bool merged = false;
  tournament_reduce(pool, 1, [&merged](std::size_t, std::size_t) { merged = true; });
  EXPECT_FALSE(merged);
}

TEST(ThreadPoolDeathTest, ZeroThreadsRejected) {
  EXPECT_DEATH(ThreadPool pool(0), "at least one");
}

TEST(ThreadPool, TaskExceptionRethrownOnCaller) {
  ThreadPool pool(4);
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 8; ++i) {
    tasks.push_back([i] {
      if (i == 3) throw std::runtime_error("task 3 failed");
    });
  }
  try {
    pool.run_batch(tasks);
    FAIL() << "expected the task exception on the calling thread";
  } catch (const std::runtime_error& error) {
    EXPECT_STREQ(error.what(), "task 3 failed");
  }
}

TEST(ThreadPool, FailedBatchCancelsRemainingTasks) {
  // With one worker the batch is sequential, so exactly the tasks before the
  // throwing one may run: the rest must be skipped deterministically.
  ThreadPool pool(1);
  std::atomic<int> executed{0};
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 10; ++i) {
    tasks.push_back([i, &executed] {
      if (i == 4) throw std::runtime_error("boom");
      executed.fetch_add(1);
    });
  }
  EXPECT_THROW(pool.run_batch(tasks), std::runtime_error);
  EXPECT_EQ(executed.load(), 4);
}

TEST(ThreadPool, PoolStaysHealthyAfterFailedBatch) {
  ThreadPool pool(3);
  std::vector<std::function<void()>> failing{[] { throw std::runtime_error("first"); }};
  EXPECT_THROW(pool.run_batch(failing), std::runtime_error);

  // The next batch must run normally from a clean slate.
  std::atomic<int> count{0};
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 12; ++i) tasks.push_back([&count] { count.fetch_add(1); });
  pool.run_batch(tasks);
  EXPECT_EQ(count.load(), 12);

  // And a second failure is also captured cleanly.
  EXPECT_THROW(pool.run_batch(failing), std::runtime_error);
}

TEST(ThreadPool, ConcurrentThrowersDeliverExactlyOneException) {
  ThreadPool pool(8);
  for (int round = 0; round < 20; ++round) {
    std::vector<std::function<void()>> tasks;
    for (int i = 0; i < 8; ++i) {
      tasks.push_back([] { throw std::runtime_error("everyone throws"); });
    }
    EXPECT_THROW(pool.run_batch(tasks), std::runtime_error);
  }
}

TEST(ParallelForBlocks, ExceptionPropagates) {
  ThreadPool pool(4);
  EXPECT_THROW(parallel_for_blocks(pool, 1000,
                                   [](std::size_t begin, std::size_t) {
                                     if (begin == 0) throw std::runtime_error("block 0");
                                   }),
               std::runtime_error);
}

std::vector<std::uint64_t> random_values(std::size_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<std::uint64_t> values(n);
  for (auto& v : values) v = rng() % 1000;  // plenty of duplicates
  return values;
}

TEST(ParallelSort, MatchesSerialSortAcrossThreadCounts) {
  // 20000 elements exceeds the serial cutoff, so pools > 1 thread take the
  // block-sort + inplace_merge path.
  const std::vector<std::uint64_t> input = random_values(20000, 11);
  std::vector<std::uint64_t> expected = input;
  std::sort(expected.begin(), expected.end());
  for (std::size_t threads : {1u, 2u, 3u, 4u, 8u}) {
    ThreadPool pool(threads);
    std::vector<std::uint64_t> values = input;
    parallel_sort(pool, values.begin(), values.end(), std::less<>{});
    EXPECT_EQ(values, expected) << "threads=" << threads;
  }
}

TEST(ParallelSort, StrictTotalOrderGivesIdenticalPermutation) {
  // With a unique tie-break (the payload) the sorted order is unique, so the
  // payloads land in the same slots for every thread count — the property
  // sort_by_score relies on for deterministic L.
  const std::size_t n = 10000;
  std::mt19937_64 rng(5);
  std::vector<std::pair<std::uint32_t, std::uint32_t>> input(n);
  for (std::uint32_t i = 0; i < n; ++i) input[i] = {static_cast<std::uint32_t>(rng() % 50), i};
  const auto by_key_then_payload = [](const auto& a, const auto& b) {
    return a.first != b.first ? a.first < b.first : a.second < b.second;
  };
  std::vector<std::pair<std::uint32_t, std::uint32_t>> expected = input;
  std::sort(expected.begin(), expected.end(), by_key_then_payload);
  for (std::size_t threads : {2u, 5u, 8u}) {
    ThreadPool pool(threads);
    auto values = input;
    parallel_sort(pool, values.begin(), values.end(), by_key_then_payload);
    EXPECT_EQ(values, expected) << "threads=" << threads;
  }
}

TEST(ParallelSort, SmallAndEmptyRanges) {
  ThreadPool pool(4);
  std::vector<int> empty;
  parallel_sort(pool, empty.begin(), empty.end(), std::less<>{});
  EXPECT_TRUE(empty.empty());

  std::vector<int> small{5, 3, 9, 1};  // below cutoff: serial fallback
  parallel_sort(pool, small.begin(), small.end(), std::less<>{});
  EXPECT_EQ(small, (std::vector<int>{1, 3, 5, 9}));
}

TEST(ParallelSort, MoreThreadsThanDistinctBlocks) {
  // n just above the cutoff with 8 threads: split_range produces short (and
  // possibly uneven) blocks; the merge rounds must still converge.
  const std::vector<std::uint64_t> input = random_values(4099, 23);
  std::vector<std::uint64_t> expected = input;
  std::sort(expected.begin(), expected.end());
  ThreadPool pool(8);
  std::vector<std::uint64_t> values = input;
  parallel_sort(pool, values.begin(), values.end(), std::less<>{});
  EXPECT_EQ(values, expected);
}

TEST(ParallelForBlocks, MinGrainCapsBlockCount) {
  ThreadPool pool(8);
  std::atomic<int> blocks{0};
  std::vector<std::atomic<int>> hits(100);
  parallel_for_blocks(
      pool, 100,
      [&](std::size_t begin, std::size_t end) {
        blocks.fetch_add(1);
        for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
      },
      /*min_grain=*/50);
  // 100 items / grain 50 = at most 2 blocks instead of 8, full coverage kept.
  EXPECT_LE(blocks.load(), 2);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForBlocks, MinGrainLargerThanRangeStillRuns) {
  ThreadPool pool(4);
  std::atomic<int> blocks{0};
  std::atomic<int> covered{0};
  parallel_for_blocks(
      pool, 10,
      [&](std::size_t begin, std::size_t end) {
        blocks.fetch_add(1);
        covered.fetch_add(static_cast<int>(end - begin));
      },
      /*min_grain=*/1000);
  EXPECT_EQ(blocks.load(), 1);
  EXPECT_EQ(covered.load(), 10);
}

// A payload the radix sort must carry along with its key, with enough
// adversarial structure to catch stability bugs: many duplicate keys whose
// payloads record the original position.
struct KeyedItem {
  std::uint64_t key = 0;
  std::uint32_t tag = 0;
  bool operator==(const KeyedItem&) const = default;
};

std::vector<KeyedItem> stable_sorted(std::vector<KeyedItem> items) {
  std::stable_sort(items.begin(), items.end(),
                   [](const KeyedItem& a, const KeyedItem& b) { return a.key < b.key; });
  return items;
}

TEST(ParallelRadixSort, MatchesStableSortOnRandomKeys) {
  std::mt19937_64 rng(31);
  std::vector<KeyedItem> input(20000);
  for (std::uint32_t i = 0; i < input.size(); ++i) {
    input[i] = {rng(), i};  // full 64-bit keys: all 8 passes are non-trivial
  }
  const std::vector<KeyedItem> expected = stable_sorted(input);
  for (std::size_t threads : {1u, 2u, 3u, 4u, 8u}) {
    ThreadPool pool(threads);
    std::vector<KeyedItem> items = input;
    parallel_radix_sort(pool, items, [](const KeyedItem& it) { return it.key; });
    EXPECT_EQ(items, expected) << "threads=" << threads;
  }
}

TEST(ParallelRadixSort, AllEqualKeysPreserveInputOrder) {
  // Every pass is trivial (one bucket holds everything): the sort must be the
  // identity permutation, not merely *a* valid order.
  std::vector<KeyedItem> input(10000);
  for (std::uint32_t i = 0; i < input.size(); ++i) input[i] = {42, i};
  const std::vector<KeyedItem> expected = input;
  ThreadPool pool(8);
  std::vector<KeyedItem> items = input;
  parallel_radix_sort(pool, items, [](const KeyedItem& it) { return it.key; });
  EXPECT_EQ(items, expected);
}

TEST(ParallelRadixSort, AdversarialTiesMatchStableSort) {
  // Keys collide heavily in every byte: long runs of one key, interleaved
  // pairs differing only in the top byte, and keys equal to block boundaries
  // of the 8-way split.
  std::vector<KeyedItem> input;
  std::uint32_t tag = 0;
  for (int run = 0; run < 40; ++run) {
    const std::uint64_t base = static_cast<std::uint64_t>(run % 3)
                              << (8 * static_cast<unsigned>(run % 8));
    for (int i = 0; i < 300; ++i) input.push_back({base, tag++});
  }
  std::mt19937_64 rng(77);
  std::shuffle(input.begin(), input.end(), rng);
  for (std::uint32_t i = 0; i < input.size(); ++i) input[i].tag = i;  // re-tag post-shuffle
  const std::vector<KeyedItem> expected = stable_sorted(input);
  for (std::size_t threads : {2u, 5u, 8u}) {
    ThreadPool pool(threads);
    std::vector<KeyedItem> items = input;
    parallel_radix_sort(pool, items, [](const KeyedItem& it) { return it.key; });
    EXPECT_EQ(items, expected) << "threads=" << threads;
  }
}

TEST(ParallelRadixSort, IdenticalOutputAcrossThreadCounts) {
  std::mt19937_64 rng(13);
  std::vector<KeyedItem> input(15000);
  for (std::uint32_t i = 0; i < input.size(); ++i) {
    input[i] = {rng() % 512, i};  // narrow key range: 7 of 8 passes trivial
  }
  ThreadPool pool1(1);
  std::vector<KeyedItem> reference = input;
  parallel_radix_sort(pool1, reference, [](const KeyedItem& it) { return it.key; });
  for (std::size_t threads : {2u, 4u, 8u}) {
    ThreadPool pool(threads);
    std::vector<KeyedItem> items = input;
    parallel_radix_sort(pool, items, [](const KeyedItem& it) { return it.key; });
    EXPECT_EQ(items, reference) << "threads=" << threads;
  }
}

TEST(ParallelRadixSort, SmallInputFallsBackToSerial) {
  ThreadPool pool(4);
  std::vector<KeyedItem> items{{9, 0}, {1, 1}, {9, 2}, {0, 3}};
  parallel_radix_sort(pool, items, [](const KeyedItem& it) { return it.key; });
  const std::vector<KeyedItem> expected{{0, 3}, {1, 1}, {9, 0}, {9, 2}};
  EXPECT_EQ(items, expected);

  std::vector<KeyedItem> empty;
  parallel_radix_sort(pool, empty, [](const KeyedItem& it) { return it.key; });
  EXPECT_TRUE(empty.empty());
}

}  // namespace
}  // namespace lc::parallel
