#include "util/cli.hpp"

#include <gtest/gtest.h>

namespace lc {
namespace {

CliFlags make_flags() {
  CliFlags flags;
  flags.add_string("name", "default", "a string");
  flags.add_int("count", 10, "an int");
  flags.add_double("alpha", 0.5, "a double");
  flags.add_bool("verbose", false, "a bool");
  return flags;
}

TEST(CliFlags, DefaultsApply) {
  CliFlags flags = make_flags();
  const char* argv[] = {"prog"};
  ASSERT_TRUE(flags.parse(1, argv));
  EXPECT_EQ(flags.get_string("name"), "default");
  EXPECT_EQ(flags.get_int("count"), 10);
  EXPECT_DOUBLE_EQ(flags.get_double("alpha"), 0.5);
  EXPECT_FALSE(flags.get_bool("verbose"));
}

TEST(CliFlags, EqualsSyntax) {
  CliFlags flags = make_flags();
  const char* argv[] = {"prog", "--name=x", "--count=42", "--alpha=0.125", "--verbose=true"};
  ASSERT_TRUE(flags.parse(5, argv));
  EXPECT_EQ(flags.get_string("name"), "x");
  EXPECT_EQ(flags.get_int("count"), 42);
  EXPECT_DOUBLE_EQ(flags.get_double("alpha"), 0.125);
  EXPECT_TRUE(flags.get_bool("verbose"));
}

TEST(CliFlags, SpaceSyntax) {
  CliFlags flags = make_flags();
  const char* argv[] = {"prog", "--count", "7", "--name", "hello"};
  ASSERT_TRUE(flags.parse(5, argv));
  EXPECT_EQ(flags.get_int("count"), 7);
  EXPECT_EQ(flags.get_string("name"), "hello");
}

TEST(CliFlags, BareBooleanAndNegation) {
  CliFlags flags = make_flags();
  const char* argv[] = {"prog", "--verbose"};
  ASSERT_TRUE(flags.parse(2, argv));
  EXPECT_TRUE(flags.get_bool("verbose"));

  CliFlags flags2 = make_flags();
  const char* argv2[] = {"prog", "--verbose", "--no-verbose"};
  ASSERT_TRUE(flags2.parse(3, argv2));
  EXPECT_FALSE(flags2.get_bool("verbose"));
}

TEST(CliFlags, UnknownFlagFails) {
  CliFlags flags = make_flags();
  const char* argv[] = {"prog", "--bogus=1"};
  EXPECT_FALSE(flags.parse(2, argv));
}

TEST(CliFlags, MalformedNumberFails) {
  CliFlags flags = make_flags();
  const char* argv[] = {"prog", "--count=notanumber"};
  EXPECT_FALSE(flags.parse(2, argv));
}

TEST(CliFlags, MissingValueFails) {
  CliFlags flags = make_flags();
  const char* argv[] = {"prog", "--count"};
  EXPECT_FALSE(flags.parse(2, argv));
}

TEST(CliFlags, PositionalArgumentsCollected) {
  CliFlags flags = make_flags();
  const char* argv[] = {"prog", "input.txt", "--count=3", "more"};
  ASSERT_TRUE(flags.parse(4, argv));
  ASSERT_EQ(flags.positional().size(), 2u);
  EXPECT_EQ(flags.positional()[0], "input.txt");
  EXPECT_EQ(flags.positional()[1], "more");
}

TEST(CliFlags, HelpReturnsFalse) {
  CliFlags flags = make_flags();
  const char* argv[] = {"prog", "--help"};
  EXPECT_FALSE(flags.parse(2, argv));
}

TEST(CliFlags, BoolRejectsJunkValue) {
  CliFlags flags = make_flags();
  const char* argv[] = {"prog", "--verbose=maybe"};
  EXPECT_FALSE(flags.parse(2, argv));
}

}  // namespace
}  // namespace lc
