// Status / StatusOr / StoppedError semantics (util/status.hpp).
#include "util/status.hpp"

#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

namespace lc {
namespace {

TEST(Status, DefaultIsOk) {
  const Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.to_string(), "ok");
}

TEST(Status, FactoriesCarryCodeAndMessage) {
  const Status cancelled = Status::cancelled("user hit ctrl-c");
  EXPECT_FALSE(cancelled.ok());
  EXPECT_EQ(cancelled.code(), StatusCode::kCancelled);
  EXPECT_EQ(cancelled.message(), "user hit ctrl-c");
  EXPECT_EQ(cancelled.to_string(), "cancelled: user hit ctrl-c");

  EXPECT_EQ(Status::deadline_exceeded("x").code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(Status::resource_exhausted("x").code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::invalid_argument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::internal("x").code(), StatusCode::kInternal);
}

TEST(Status, CodeNames) {
  EXPECT_STREQ(status_code_name(StatusCode::kOk), "ok");
  EXPECT_STREQ(status_code_name(StatusCode::kCancelled), "cancelled");
  EXPECT_STREQ(status_code_name(StatusCode::kDeadlineExceeded), "deadline exceeded");
  EXPECT_STREQ(status_code_name(StatusCode::kResourceExhausted), "resource exhausted");
  EXPECT_STREQ(status_code_name(StatusCode::kInvalidArgument), "invalid argument");
  EXPECT_STREQ(status_code_name(StatusCode::kInternal), "internal");
}

TEST(Status, EmptyMessageOmitsColon) {
  EXPECT_EQ(Status::internal("").to_string(), "internal");
}

TEST(StoppedError, CarriesStatusAndWhat) {
  const StoppedError error(Status::deadline_exceeded("deadline passed"));
  EXPECT_EQ(error.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_STREQ(error.what(), "deadline exceeded: deadline passed");
}

TEST(StatusOr, HoldsValue) {
  StatusOr<int> result = 42;
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.status().ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(*result, 42);
}

TEST(StatusOr, HoldsError) {
  const StatusOr<int> result = Status::cancelled("stop");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
  EXPECT_EQ(result.status().message(), "stop");
}

TEST(StatusOr, MoveOnlyValueMovesOut) {
  StatusOr<std::vector<int>> result = std::vector<int>{1, 2, 3};
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 3u);
  const std::vector<int> taken = std::move(result).value();
  EXPECT_EQ(taken, (std::vector<int>{1, 2, 3}));
}

TEST(Status, UnavailableFactory) {
  const Status busy = Status::unavailable("a run is already in flight");
  EXPECT_EQ(busy.code(), StatusCode::kUnavailable);
  EXPECT_EQ(busy.to_string(), "unavailable: a run is already in flight");
  EXPECT_STREQ(status_code_name(StatusCode::kUnavailable), "unavailable");
}

TEST(ErrorClass, TaxonomyPartitionsTheCodes) {
  EXPECT_EQ(status_error_class(StatusCode::kOk), ErrorClass::kNone);
  EXPECT_EQ(status_error_class(StatusCode::kCancelled), ErrorClass::kCancel);
  EXPECT_EQ(status_error_class(StatusCode::kDeadlineExceeded), ErrorClass::kResource);
  EXPECT_EQ(status_error_class(StatusCode::kResourceExhausted), ErrorClass::kResource);
  EXPECT_EQ(status_error_class(StatusCode::kInvalidArgument), ErrorClass::kInput);
  EXPECT_EQ(status_error_class(StatusCode::kInternal), ErrorClass::kTransient);
  EXPECT_EQ(status_error_class(StatusCode::kUnavailable), ErrorClass::kTransient);
}

TEST(ErrorClass, RetryableIsExactlyTransient) {
  // Retry chases flaky effects (I/O, busy server); resubmitting a cancelled
  // or over-budget request unchanged cannot succeed.
  EXPECT_TRUE(status_is_retryable(StatusCode::kInternal));
  EXPECT_TRUE(status_is_retryable(StatusCode::kUnavailable));
  EXPECT_FALSE(status_is_retryable(StatusCode::kOk));
  EXPECT_FALSE(status_is_retryable(StatusCode::kCancelled));
  EXPECT_FALSE(status_is_retryable(StatusCode::kDeadlineExceeded));
  EXPECT_FALSE(status_is_retryable(StatusCode::kResourceExhausted));
  EXPECT_FALSE(status_is_retryable(StatusCode::kInvalidArgument));
}

TEST(ErrorClass, DegradableIsExactlyResource) {
  EXPECT_TRUE(status_is_degradable(StatusCode::kDeadlineExceeded));
  EXPECT_TRUE(status_is_degradable(StatusCode::kResourceExhausted));
  EXPECT_FALSE(status_is_degradable(StatusCode::kCancelled));
  EXPECT_FALSE(status_is_degradable(StatusCode::kInternal));
  EXPECT_FALSE(status_is_degradable(StatusCode::kInvalidArgument));
}

TEST(ErrorClass, Names) {
  EXPECT_STREQ(error_class_name(ErrorClass::kNone), "none");
  EXPECT_STREQ(error_class_name(ErrorClass::kCancel), "cancel");
  EXPECT_STREQ(error_class_name(ErrorClass::kTransient), "transient");
  EXPECT_STREQ(error_class_name(ErrorClass::kResource), "resource");
  EXPECT_STREQ(error_class_name(ErrorClass::kInput), "input");
}

}  // namespace
}  // namespace lc
