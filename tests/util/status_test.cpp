// Status / StatusOr / StoppedError semantics (util/status.hpp).
#include "util/status.hpp"

#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

namespace lc {
namespace {

TEST(Status, DefaultIsOk) {
  const Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.to_string(), "ok");
}

TEST(Status, FactoriesCarryCodeAndMessage) {
  const Status cancelled = Status::cancelled("user hit ctrl-c");
  EXPECT_FALSE(cancelled.ok());
  EXPECT_EQ(cancelled.code(), StatusCode::kCancelled);
  EXPECT_EQ(cancelled.message(), "user hit ctrl-c");
  EXPECT_EQ(cancelled.to_string(), "cancelled: user hit ctrl-c");

  EXPECT_EQ(Status::deadline_exceeded("x").code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(Status::resource_exhausted("x").code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::invalid_argument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::internal("x").code(), StatusCode::kInternal);
}

TEST(Status, CodeNames) {
  EXPECT_STREQ(status_code_name(StatusCode::kOk), "ok");
  EXPECT_STREQ(status_code_name(StatusCode::kCancelled), "cancelled");
  EXPECT_STREQ(status_code_name(StatusCode::kDeadlineExceeded), "deadline exceeded");
  EXPECT_STREQ(status_code_name(StatusCode::kResourceExhausted), "resource exhausted");
  EXPECT_STREQ(status_code_name(StatusCode::kInvalidArgument), "invalid argument");
  EXPECT_STREQ(status_code_name(StatusCode::kInternal), "internal");
}

TEST(Status, EmptyMessageOmitsColon) {
  EXPECT_EQ(Status::internal("").to_string(), "internal");
}

TEST(StoppedError, CarriesStatusAndWhat) {
  const StoppedError error(Status::deadline_exceeded("deadline passed"));
  EXPECT_EQ(error.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_STREQ(error.what(), "deadline exceeded: deadline passed");
}

TEST(StatusOr, HoldsValue) {
  StatusOr<int> result = 42;
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.status().ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(*result, 42);
}

TEST(StatusOr, HoldsError) {
  const StatusOr<int> result = Status::cancelled("stop");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
  EXPECT_EQ(result.status().message(), "stop");
}

TEST(StatusOr, MoveOnlyValueMovesOut) {
  StatusOr<std::vector<int>> result = std::vector<int>{1, 2, 3};
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 3u);
  const std::vector<int> taken = std::move(result).value();
  EXPECT_EQ(taken, (std::vector<int>{1, 2, 3}));
}

}  // namespace
}  // namespace lc
