#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <map>
#include <vector>

namespace lc {
namespace {

TEST(Rng, DeterministicForFixedSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next_u64() == b.next_u64()) ? 1 : 0;
  EXPECT_LT(same, 3);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowOneIsAlwaysZero) {
  Rng rng(9);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, NextDoubleRangeRespected) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double(-2.5, 4.0);
    EXPECT_GE(d, -2.5);
    EXPECT_LT(d, 4.0);
  }
}

TEST(Rng, UniformityRoughCheck) {
  // 10 buckets over [0,1): each should get ~1000 of 10000 draws.
  Rng rng(17);
  std::array<int, 10> buckets{};
  for (int i = 0; i < 10000; ++i) {
    ++buckets[static_cast<std::size_t>(rng.next_double() * 10.0)];
  }
  for (int count : buckets) {
    EXPECT_GT(count, 800);
    EXPECT_LT(count, 1200);
  }
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(21);
  Rng child = parent.split();
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (parent.next_u64() == child.next_u64()) ? 1 : 0;
  EXPECT_LT(same, 3);
}

TEST(Shuffle, IsAPermutation) {
  Rng rng(31);
  std::vector<int> values(100);
  for (int i = 0; i < 100; ++i) values[static_cast<std::size_t>(i)] = i;
  auto shuffled = values;
  shuffle(shuffled.begin(), shuffled.end(), rng);
  auto sorted = shuffled;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, values);
}

TEST(Shuffle, DeterministicForFixedSeed) {
  std::vector<int> a{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> b = a;
  Rng ra(5);
  Rng rb(5);
  shuffle(a.begin(), a.end(), ra);
  shuffle(b.begin(), b.end(), rb);
  EXPECT_EQ(a, b);
}

TEST(Shuffle, HandlesTrivialSizes) {
  Rng rng(1);
  std::vector<int> empty;
  shuffle(empty.begin(), empty.end(), rng);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one{42};
  shuffle(one.begin(), one.end(), rng);
  EXPECT_EQ(one[0], 42);
}

TEST(SampleCumulative, RespectsWeights) {
  // Weights 1, 3, 6 -> cumulative 1, 4, 10; expect ~10%/30%/60%.
  const double cumulative[] = {1.0, 4.0, 10.0};
  Rng rng(77);
  std::map<std::size_t, int> counts;
  const int draws = 20000;
  for (int i = 0; i < draws; ++i) ++counts[sample_cumulative(cumulative, 3, rng)];
  EXPECT_NEAR(counts[0] / static_cast<double>(draws), 0.10, 0.02);
  EXPECT_NEAR(counts[1] / static_cast<double>(draws), 0.30, 0.02);
  EXPECT_NEAR(counts[2] / static_cast<double>(draws), 0.60, 0.02);
}

TEST(SampleCumulative, SingleBucket) {
  const double cumulative[] = {2.5};
  Rng rng(3);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(sample_cumulative(cumulative, 1, rng), 0u);
}

}  // namespace
}  // namespace lc
