#include <gtest/gtest.h>

#include <thread>

#include "util/logging.hpp"
#include "util/memory.hpp"
#include "util/stopwatch.hpp"

namespace lc {
namespace {

TEST(Stopwatch, MeasuresElapsedTime) {
  Stopwatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const double s = watch.seconds();
  EXPECT_GE(s, 0.015);
  EXPECT_LT(s, 5.0);
  EXPECT_NEAR(watch.millis(), watch.seconds() * 1e3, 50.0);
}

TEST(Stopwatch, LapRestartsTimer) {
  Stopwatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(15));
  const double first = watch.lap();
  EXPECT_GE(first, 0.010);
  const double second = watch.seconds();
  EXPECT_LT(second, first);
}

TEST(Stopwatch, ResetZeroes) {
  Stopwatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  watch.reset();
  EXPECT_LT(watch.seconds(), 0.01);
}

TEST(Memory, ProbeReturnsPlausibleValues) {
  const MemoryUsage usage = read_memory_usage();
  // On Linux these are positive; a running gtest binary uses at least 1 MB.
  EXPECT_GT(usage.vm_size_kb, 1024u);
  EXPECT_GE(usage.vm_peak_kb, usage.vm_size_kb);
  EXPECT_GT(usage.rss_kb, 256u);
  EXPECT_GE(usage.rss_peak_kb, usage.rss_kb);
}

TEST(Memory, GrowsAfterLargeAllocation) {
  const MemoryUsage before = read_memory_usage();
  std::vector<char> block(64 * 1024 * 1024, 1);  // 64 MB, touched
  const MemoryUsage after = read_memory_usage();
  EXPECT_GT(after.vm_size_kb, before.vm_size_kb + 32 * 1024);
  EXPECT_GT(block[block.size() - 1], 0);
}

TEST(Logging, LevelFilterRoundTrip) {
  const LogLevel original = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  LC_LOG(kInfo) << "this line must be filtered out";
  set_log_level(original);
}

TEST(Logging, EmitsAtOrAboveLevel) {
  const LogLevel original = log_level();
  set_log_level(LogLevel::kDebug);
  LC_LOG(kDebug) << "debug visible";
  LC_LOG(kWarn) << "warn visible";
  set_log_level(original);
}

}  // namespace
}  // namespace lc
