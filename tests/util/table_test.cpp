#include "util/table.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace lc {
namespace {

TEST(Table, TextAlignsColumns) {
  Table table({"alpha", "n"});
  table.add_row({"0.001", "3132"});
  table.add_row({"0.01", "17"});
  const std::string text = table.to_text();
  // header, rule, two rows
  std::istringstream stream(text);
  std::string line;
  int lines = 0;
  while (std::getline(stream, line)) ++lines;
  EXPECT_EQ(lines, 4);
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("-----"), std::string::npos);
}

TEST(Table, CsvEscapesSpecials) {
  Table table({"k", "v"});
  table.add_row({"a,b", "say \"hi\""});
  const std::string csv = table.to_csv();
  EXPECT_NE(csv.find("\"a,b\""), std::string::npos);
  EXPECT_NE(csv.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(Table, CsvRoundTripSimple) {
  Table table({"x", "y"});
  table.add_row({"1", "2"});
  EXPECT_EQ(table.to_csv(), "x,y\n1,2\n");
}

TEST(Table, WriteCsvCreatesFile) {
  Table table({"c"});
  table.add_row({"v"});
  const std::string path = testing::TempDir() + "/lc_table_test.csv";
  ASSERT_TRUE(table.write_csv(path));
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), "c\nv\n");
  std::remove(path.c_str());
}

TEST(Table, WriteCsvFailsOnBadPath) {
  Table table({"c"});
  EXPECT_FALSE(table.write_csv("/nonexistent_dir_zzz/x.csv"));
}

TEST(Table, RowCountTracksRows) {
  Table table({"a"});
  EXPECT_EQ(table.row_count(), 0u);
  table.add_row({"1"});
  table.add_row({"2"});
  EXPECT_EQ(table.row_count(), 2u);
}

TEST(TableDeathTest, MismatchedArityAborts) {
  Table table({"a", "b"});
  EXPECT_DEATH(table.add_row({"only-one"}), "arity");
}

}  // namespace
}  // namespace lc
