#include "util/snapshot_io.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

namespace lc::snapshot {
namespace {

namespace fs = std::filesystem;

/// Fresh per-test scratch directory under the system temp dir.
class SnapshotIo : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("lc_snapshot_io_" +
            std::string(::testing::UnitTest::GetInstance()->current_test_info()->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    path_ = (dir_ / "state.lcsnap").string();
  }
  void TearDown() override { fs::remove_all(dir_); }

  [[nodiscard]] std::string read_file() const {
    std::ifstream in(path_, std::ios::binary);
    EXPECT_TRUE(in.good());
    return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
  }

  void write_file(const std::string& bytes) const {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  fs::path dir_;
  std::string path_;
};

SnapshotWriter make_writer(std::uint32_t tag = 7) {
  SectionWriter body;
  body.u8(5);
  body.u32(tag);
  body.u64(0x1122334455667788ull);
  body.f64(0.25);
  body.pod_vector(std::vector<std::uint32_t>{1, 2, 3});
  SnapshotWriter writer;
  writer.add_section(1, std::move(body));
  return writer;
}

TEST_F(SnapshotIo, FnvMatchesReferenceVector) {
  // Standard FNV-1a test vector: "a" -> af63dc4c8601ec8c.
  EXPECT_EQ(fnv1a64("a", 1), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(fnv1a64("", 0), 14695981039346656037ull);
}

TEST_F(SnapshotIo, RoundTrip) {
  SnapshotWriter writer = make_writer();
  ASSERT_TRUE(writer.commit(path_).ok());
  EXPECT_GT(writer.committed_bytes(), 0u);

  StatusOr<Snapshot> loaded = Snapshot::load(path_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().to_string();
  EXPECT_EQ(loaded.value().section_count(), 1u);
  EXPECT_TRUE(loaded.value().has_section(1));
  EXPECT_FALSE(loaded.value().has_section(2));
  EXPECT_EQ(loaded.value().file_bytes(), writer.committed_bytes());

  StatusOr<SectionReader> section = loaded.value().section(1);
  ASSERT_TRUE(section.ok());
  SectionReader reader = section.value();
  std::uint8_t v8 = 0;
  std::uint32_t v32 = 0;
  std::uint64_t v64 = 0;
  double vf = 0.0;
  std::vector<std::uint32_t> pod;
  ASSERT_TRUE(reader.u8(&v8).ok());
  ASSERT_TRUE(reader.u32(&v32).ok());
  ASSERT_TRUE(reader.u64(&v64).ok());
  ASSERT_TRUE(reader.f64(&vf).ok());
  ASSERT_TRUE(reader.pod_vector(&pod, 100).ok());
  EXPECT_TRUE(reader.expect_end().ok());
  EXPECT_EQ(v8, 5);
  EXPECT_EQ(v32, 7u);
  EXPECT_EQ(v64, 0x1122334455667788ull);
  EXPECT_EQ(vf, 0.25);
  EXPECT_EQ(pod, (std::vector<std::uint32_t>{1, 2, 3}));
}

TEST_F(SnapshotIo, CommitRotatesPreviousSnapshot) {
  ASSERT_TRUE(make_writer(1).commit(path_).ok());
  ASSERT_TRUE(make_writer(2).commit(path_).ok());

  auto read_tag = [](const std::string& file) -> std::uint32_t {
    StatusOr<Snapshot> snap = Snapshot::load(file);
    EXPECT_TRUE(snap.ok()) << snap.status().to_string();
    StatusOr<SectionReader> section = snap.value().section(1);
    EXPECT_TRUE(section.ok());
    SectionReader reader = section.value();
    std::uint8_t v8 = 0;
    std::uint32_t tag = 0;
    EXPECT_TRUE(reader.u8(&v8).ok());
    EXPECT_TRUE(reader.u32(&tag).ok());
    return tag;
  };
  EXPECT_EQ(read_tag(path_), 2u);
  EXPECT_EQ(read_tag(path_ + ".prev"), 1u);
  EXPECT_FALSE(fs::exists(path_ + ".tmp"));
}

TEST_F(SnapshotIo, MissingFileIsAnError) {
  const StatusOr<Snapshot> loaded = Snapshot::load(path_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(SnapshotIo, EveryTruncationIsDetected) {
  ASSERT_TRUE(make_writer().commit(path_).ok());
  const std::string good = read_file();
  for (std::size_t keep = 0; keep < good.size(); ++keep) {
    write_file(good.substr(0, keep));
    EXPECT_FALSE(Snapshot::load(path_).ok()) << "truncated to " << keep << " bytes";
  }
}

TEST_F(SnapshotIo, EveryByteFlipIsDetected) {
  ASSERT_TRUE(make_writer().commit(path_).ok());
  const std::string good = read_file();
  ASSERT_TRUE(Snapshot::load(path_).ok());
  for (std::size_t i = 0; i < good.size(); ++i) {
    std::string bad = good;
    bad[i] = static_cast<char>(bad[i] ^ 0x40);
    write_file(bad);
    EXPECT_FALSE(Snapshot::load(path_).ok()) << "flip at byte " << i;
  }
}

TEST_F(SnapshotIo, TrailingGarbageIsDetected) {
  ASSERT_TRUE(make_writer().commit(path_).ok());
  write_file(read_file() + "garbage");
  EXPECT_FALSE(Snapshot::load(path_).ok());
}

TEST_F(SnapshotIo, GarbageFileIsAnError) {
  write_file("this is not a snapshot at all, not even close............");
  const StatusOr<Snapshot> loaded = Snapshot::load(path_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("at byte"), std::string::npos);
}

TEST_F(SnapshotIo, ReadPastSectionEndIsAnError) {
  SectionWriter body;
  body.u32(9);
  SnapshotWriter writer;
  writer.add_section(3, std::move(body));
  ASSERT_TRUE(writer.commit(path_).ok());

  StatusOr<Snapshot> loaded = Snapshot::load(path_);
  ASSERT_TRUE(loaded.ok());
  SectionReader reader = loaded.value().section(3).value();
  std::uint64_t v64 = 0;
  const Status overrun = reader.u64(&v64);  // only 4 payload bytes exist
  ASSERT_FALSE(overrun.ok());
  EXPECT_NE(overrun.message().find("at byte"), std::string::npos);
}

TEST_F(SnapshotIo, UnconsumedPayloadFailsExpectEnd) {
  SnapshotWriter writer = make_writer();
  ASSERT_TRUE(writer.commit(path_).ok());
  StatusOr<Snapshot> loaded = Snapshot::load(path_);
  ASSERT_TRUE(loaded.ok());
  SectionReader reader = loaded.value().section(1).value();
  std::uint8_t v8 = 0;
  ASSERT_TRUE(reader.u8(&v8).ok());
  EXPECT_FALSE(reader.expect_end().ok());
}

TEST_F(SnapshotIo, ImplausiblePodCountIsRejectedBeforeAllocation) {
  SectionWriter body;
  body.u64(1ull << 60);  // a pod_vector length field with no payload behind it
  SnapshotWriter writer;
  writer.add_section(4, std::move(body));
  ASSERT_TRUE(writer.commit(path_).ok());

  StatusOr<Snapshot> loaded = Snapshot::load(path_);
  ASSERT_TRUE(loaded.ok());
  SectionReader reader = loaded.value().section(4).value();
  std::vector<std::uint64_t> out;
  const Status status = reader.pod_vector(&out, 1ull << 62);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("implausible"), std::string::npos);
  EXPECT_TRUE(out.empty());
}

TEST_F(SnapshotIo, MissingSectionIsAnError) {
  ASSERT_TRUE(make_writer().commit(path_).ok());
  StatusOr<Snapshot> loaded = Snapshot::load(path_);
  ASSERT_TRUE(loaded.ok());
  EXPECT_FALSE(loaded.value().section(42).ok());
}

}  // namespace
}  // namespace lc::snapshot
