// RunContext / PollTicker / MemoryCharge semantics (util/run_context.hpp).
#include "util/run_context.hpp"

#include <chrono>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/status.hpp"

namespace lc {
namespace {

TEST(RunContext, IdleContextNeverStops) {
  RunContext ctx;
  EXPECT_FALSE(ctx.stop_requested());
  EXPECT_FALSE(ctx.poll());
  EXPECT_NO_THROW(ctx.throw_if_stopped());
  EXPECT_TRUE(ctx.status().ok());
}

TEST(RunContext, CancelStopsWithStatus) {
  RunContext ctx;
  ctx.request_cancel("operator said stop");
  EXPECT_TRUE(ctx.stop_requested());
  EXPECT_TRUE(ctx.poll());
  EXPECT_EQ(ctx.status().code(), StatusCode::kCancelled);
  EXPECT_EQ(ctx.status().message(), "operator said stop");
  try {
    ctx.throw_if_stopped();
    FAIL() << "expected StoppedError";
  } catch (const StoppedError& error) {
    EXPECT_EQ(error.status().code(), StatusCode::kCancelled);
  }
}

TEST(RunContext, PastDeadlineTripsOnPoll) {
  RunContext ctx;
  ctx.set_deadline_after(std::chrono::nanoseconds{0});
  // The stop flag only raises when somebody polls.
  EXPECT_FALSE(ctx.stop_requested());
  EXPECT_TRUE(ctx.poll());
  EXPECT_TRUE(ctx.stop_requested());
  EXPECT_EQ(ctx.status().code(), StatusCode::kDeadlineExceeded);
}

TEST(RunContext, NegativeDeadlineTripsOnFirstPollNotUnderflows) {
  // A negative budget must behave like "already expired", not wrap around
  // into a deadline centuries away.
  RunContext ctx;
  ctx.set_deadline_after(std::chrono::milliseconds{-5});
  EXPECT_TRUE(ctx.poll());
  EXPECT_EQ(ctx.status().code(), StatusCode::kDeadlineExceeded);
}

TEST(RunContext, FutureDeadlineDoesNotTrip) {
  RunContext ctx;
  ctx.set_deadline_after(std::chrono::hours{24});
  EXPECT_FALSE(ctx.poll());
  EXPECT_TRUE(ctx.status().ok());
}

TEST(RunContext, FirstCauseWins) {
  RunContext ctx;
  ctx.request_cancel("first");
  ctx.request_cancel("second");
  ctx.set_deadline_after(std::chrono::nanoseconds{0});
  ctx.poll();
  EXPECT_EQ(ctx.status().code(), StatusCode::kCancelled);
  EXPECT_EQ(ctx.status().message(), "first");
}

TEST(RunContext, ChargeWithinBudgetAccumulates) {
  RunContext ctx;
  ctx.set_memory_budget(1000);
  ctx.charge_memory(400, "a");
  ctx.charge_memory(500, "b");
  EXPECT_EQ(ctx.memory_charged(), 900u);
  EXPECT_EQ(ctx.memory_peak(), 900u);
  ctx.release_memory(500);
  EXPECT_EQ(ctx.memory_charged(), 400u);
  EXPECT_EQ(ctx.memory_peak(), 900u);  // peak is a high-water mark
  EXPECT_FALSE(ctx.stop_requested());
}

TEST(RunContext, ChargeOverBudgetThrowsResourceExhausted) {
  RunContext ctx;
  ctx.set_memory_budget(1000);
  ctx.charge_memory(800, "a");
  try {
    ctx.charge_memory(300, "b");
    FAIL() << "expected StoppedError";
  } catch (const StoppedError& error) {
    EXPECT_EQ(error.status().code(), StatusCode::kResourceExhausted);
    EXPECT_NE(error.status().message().find("b"), std::string::npos);
  }
  EXPECT_TRUE(ctx.stop_requested());
}

TEST(RunContext, NoBudgetMeansUnlimited) {
  RunContext ctx;
  EXPECT_NO_THROW(ctx.charge_memory(1ull << 40, "huge"));
  EXPECT_EQ(ctx.memory_peak(), 1ull << 40);
}

TEST(RunContext, CancelFromAnotherThreadIsObserved) {
  RunContext ctx;
  std::thread canceller([&ctx] { ctx.request_cancel(); });
  canceller.join();
  EXPECT_TRUE(ctx.stop_requested());
  EXPECT_EQ(ctx.status().code(), StatusCode::kCancelled);
}

TEST(PollTicker, NullContextIsNoOp) {
  PollTicker ticker(nullptr, 2);
  for (int i = 0; i < 100; ++i) EXPECT_NO_THROW(ticker.checkpoint());
}

TEST(PollTicker, ThrowsAtPeriodBoundaryOnly) {
  RunContext ctx;
  ctx.request_cancel();
  PollTicker ticker(&ctx, 4);
  // Three sub-period checkpoints pass; the fourth crosses the boundary.
  EXPECT_NO_THROW(ticker.checkpoint());
  EXPECT_NO_THROW(ticker.checkpoint());
  EXPECT_NO_THROW(ticker.checkpoint());
  EXPECT_THROW(ticker.checkpoint(), StoppedError);
}

TEST(PollTicker, LargeAmountCrossesImmediately) {
  RunContext ctx;
  ctx.request_cancel();
  PollTicker ticker(&ctx, 4096);
  EXPECT_THROW(ticker.checkpoint(10000), StoppedError);
}

TEST(MemoryCharge, ReleasesOnDestruction) {
  RunContext ctx;
  {
    MemoryCharge charge(&ctx, 128, "scoped");
    EXPECT_EQ(ctx.memory_charged(), 128u);
  }
  EXPECT_EQ(ctx.memory_charged(), 0u);
  EXPECT_EQ(ctx.memory_peak(), 128u);
}

TEST(MemoryCharge, CommitKeepsTheCharge) {
  RunContext ctx;
  {
    MemoryCharge charge(&ctx, 128, "committed");
    charge.commit();
  }
  EXPECT_EQ(ctx.memory_charged(), 128u);
}

TEST(MemoryCharge, MoveTransfersOwnership) {
  RunContext ctx;
  {
    MemoryCharge outer;
    {
      MemoryCharge inner(&ctx, 64, "moved");
      outer = std::move(inner);
    }
    EXPECT_EQ(ctx.memory_charged(), 64u);  // inner's dtor must not release
  }
  EXPECT_EQ(ctx.memory_charged(), 0u);
}

TEST(MemoryCharge, NullContextIsNoOp) {
  MemoryCharge charge(nullptr, 1ull << 40, "nothing");
  charge.release();
}

}  // namespace
}  // namespace lc
