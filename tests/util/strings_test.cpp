#include "util/strings.hpp"

#include <gtest/gtest.h>

namespace lc {
namespace {

TEST(Split, BasicDelimiter) {
  const auto pieces = split("a,b,,c", ',');
  ASSERT_EQ(pieces.size(), 4u);
  EXPECT_EQ(pieces[0], "a");
  EXPECT_EQ(pieces[1], "b");
  EXPECT_EQ(pieces[2], "");
  EXPECT_EQ(pieces[3], "c");
}

TEST(Split, NoDelimiterYieldsWhole) {
  const auto pieces = split("hello", ',');
  ASSERT_EQ(pieces.size(), 1u);
  EXPECT_EQ(pieces[0], "hello");
}

TEST(Split, EmptyInput) {
  const auto pieces = split("", ',');
  ASSERT_EQ(pieces.size(), 1u);
  EXPECT_EQ(pieces[0], "");
}

TEST(SplitWhitespace, DropsEmptyRuns) {
  const auto pieces = split_whitespace("  the\tquick \n brown  ");
  ASSERT_EQ(pieces.size(), 3u);
  EXPECT_EQ(pieces[0], "the");
  EXPECT_EQ(pieces[1], "quick");
  EXPECT_EQ(pieces[2], "brown");
}

TEST(SplitWhitespace, AllWhitespaceIsEmpty) {
  EXPECT_TRUE(split_whitespace(" \t\n ").empty());
}

TEST(Trim, StripsBothEnds) {
  EXPECT_EQ(trim("  x y  "), "x y");
  EXPECT_EQ(trim("xy"), "xy");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
}

TEST(ToLower, AsciiOnly) {
  EXPECT_EQ(to_lower("HeLLo123"), "hello123");
}

TEST(StartsEndsWith, Basics) {
  EXPECT_TRUE(starts_with("--flag", "--"));
  EXPECT_FALSE(starts_with("-", "--"));
  EXPECT_TRUE(ends_with("file.csv", ".csv"));
  EXPECT_FALSE(ends_with("csv", ".csv"));
}

TEST(WithCommas, GroupsOfThree) {
  EXPECT_EQ(with_commas(0), "0");
  EXPECT_EQ(with_commas(999), "999");
  EXPECT_EQ(with_commas(1000), "1,000");
  EXPECT_EQ(with_commas(1628578), "1,628,578");
  EXPECT_EQ(with_commas(1234567890123ull), "1,234,567,890,123");
}

TEST(FormatSeconds, ScalesUnits) {
  EXPECT_EQ(format_seconds(0.0000005), "0.5 us");
  EXPECT_EQ(format_seconds(0.0421), "42.1 ms");
  EXPECT_EQ(format_seconds(13.2), "13.20 s");
  EXPECT_EQ(format_seconds(1234.0), "1234 s");
  EXPECT_EQ(format_seconds(-1.0), "-");
}

TEST(FormatKb, ScalesUnits) {
  EXPECT_EQ(format_kb(512.0), "512.0 KB");
  EXPECT_EQ(format_kb(881.2 * 1024.0), "881.2 MB");
  EXPECT_EQ(format_kb(19.9 * 1024.0 * 1024.0), "19.90 GB");
}

TEST(Strprintf, FormatsLikePrintf) {
  EXPECT_EQ(strprintf("%d-%s-%.2f", 7, "x", 1.5), "7-x-1.50");
  EXPECT_EQ(strprintf("empty"), "empty");
}

}  // namespace
}  // namespace lc
