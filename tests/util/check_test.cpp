#include "util/check.hpp"

#include <gtest/gtest.h>

namespace lc {
namespace {

TEST(CheckDeathTest, FailingCheckAbortsWithLocation) {
  EXPECT_DEATH(LC_CHECK(1 == 2), "LC_CHECK failed");
  EXPECT_DEATH(LC_CHECK(false), "false");
}

TEST(CheckDeathTest, MessageIsIncluded) {
  EXPECT_DEATH(LC_CHECK_MSG(false, "the invariant text"), "the invariant text");
}

TEST(CheckDeathTest, LocationNamesThisFile) {
  EXPECT_DEATH(LC_CHECK(2 + 2 == 5), "check_test.cpp");
}

TEST(CheckDeathTest, ExpressionTextIsStringized) {
  const int edges = 3;
  EXPECT_DEATH(LC_CHECK(edges > 10), "edges > 10");
}

#ifndef NDEBUG
TEST(CheckDeathTest, DcheckAbortsInDebugBuilds) {
  EXPECT_DEATH(LC_DCHECK(false), "LC_CHECK failed");
}
#endif

TEST(Check, PassingChecksAreSilent) {
  LC_CHECK(1 + 1 == 2);
  LC_CHECK_MSG(true, "never printed");
  LC_DCHECK(true);
}

TEST(Check, SideEffectsEvaluateExactlyOnceInCheck) {
  int calls = 0;
  auto bump = [&calls] {
    ++calls;
    return true;
  };
  LC_CHECK(bump());
  EXPECT_EQ(calls, 1);
}

#ifdef NDEBUG
TEST(Check, DcheckCompiledOutInRelease) {
  int calls = 0;
  auto bump = [&calls] {
    ++calls;
    return true;
  };
  LC_DCHECK(bump());
  EXPECT_EQ(calls, 0);  // release builds must not evaluate the expression
}
#endif

}  // namespace
}  // namespace lc
