// Runtime chaos-engine unit suite: the fault-plan grammar, the programmatic
// site registry, clause windows (skip/max/probability) and their seeded
// determinism, and the always-compiled runtime sites (memory.charge and the
// io.* seam consumed by util/snapshot_io). Everything here runs in every
// build — no -DLC_FAULT_INJECT required.
#include "util/fault_inject.hpp"

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <new>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/link_clusterer.hpp"
#include "graph/generators.hpp"
#include "util/run_context.hpp"
#include "util/status.hpp"

namespace lc::fault {
namespace {

class FaultPlanTest : public ::testing::Test {
 protected:
  void TearDown() override {
    disarm();
    ::unsetenv("LC_FAULT_PLAN");
    ::unsetenv("LC_FAULT_POINT");
  }
};

TEST_F(FaultPlanTest, ParsesMultiClausePlan) {
  const StatusOr<FaultPlan> plan = parse_plan(
      "seed=7; io.write:write_error:p=0.5:max=2; "
      "memory.charge:sleep:sleep=250:skip=3");
  ASSERT_TRUE(plan.ok()) << plan.status().to_string();
  EXPECT_EQ(plan->seed, 7u);
  ASSERT_EQ(plan->clauses.size(), 2u);
  EXPECT_EQ(plan->clauses[0].site, "io.write");
  EXPECT_EQ(plan->clauses[0].kind, FaultKind::kWriteError);
  EXPECT_DOUBLE_EQ(plan->clauses[0].probability, 0.5);
  EXPECT_EQ(plan->clauses[0].max_fires, 2u);
  EXPECT_EQ(plan->clauses[1].site, "memory.charge");
  EXPECT_EQ(plan->clauses[1].kind, FaultKind::kSleep);
  EXPECT_EQ(plan->clauses[1].sleep_ms, 250u);
  EXPECT_EQ(plan->clauses[1].skip_hits, 3u);
}

TEST_F(FaultPlanTest, ToStringRoundTrips) {
  const StatusOr<FaultPlan> plan =
      parse_plan("seed=11;io.fsync:fsync_error:max=1;memory.charge:bad_alloc");
  ASSERT_TRUE(plan.ok());
  const StatusOr<FaultPlan> again = parse_plan(plan->to_string());
  ASSERT_TRUE(again.ok()) << again.status().to_string();
  EXPECT_EQ(again->to_string(), plan->to_string());
  EXPECT_EQ(again->seed, 11u);
  ASSERT_EQ(again->clauses.size(), 2u);
  EXPECT_EQ(again->clauses[0].kind, FaultKind::kFsyncError);
}

TEST_F(FaultPlanTest, RejectsMalformedPlans) {
  EXPECT_FALSE(parse_plan("no.such.site:throw").ok());
  EXPECT_FALSE(parse_plan("sweep.entry:frobnicate").ok());
  EXPECT_FALSE(parse_plan("sweep.entry").ok());
  EXPECT_FALSE(parse_plan("seed=banana").ok());
  EXPECT_FALSE(parse_plan("io.write:write_error:p=1.5").ok());
  EXPECT_FALSE(parse_plan("io.write:write_error:bogus=3").ok());
  // Kind/site cross-wiring: I/O kinds only at their io.* site, phase kinds
  // never at an io.* site.
  EXPECT_FALSE(parse_plan("sweep.entry:write_error").ok());
  EXPECT_FALSE(parse_plan("io.write:throw").ok());
  EXPECT_FALSE(parse_plan("io.write:fsync_error").ok());
  EXPECT_FALSE(parse_plan("io.corrupt:write_error").ok());
}

TEST_F(FaultPlanTest, EmptyPlanParsesAndDisarms) {
  const StatusOr<FaultPlan> plan = parse_plan("  ;; ");
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan->empty());
  arm("memory.charge", FaultKind::kThrow);
  EXPECT_TRUE(any_armed());
  ASSERT_TRUE(arm_plan(*plan).ok());
  EXPECT_FALSE(any_armed());
}

TEST_F(FaultPlanTest, RegistryCoversEveryClass) {
  const std::vector<SiteInfo>& sites = site_registry();
  ASSERT_FALSE(sites.empty());
  bool phase = false;
  bool runtime = false;
  bool io = false;
  for (const SiteInfo& site : sites) {
    ASSERT_NE(site.name, nullptr);
    ASSERT_NE(site.summary, nullptr);
    EXPECT_EQ(find_site(site.name), &site) << site.name;
    phase |= site.cls == SiteClass::kPhase;
    runtime |= site.cls == SiteClass::kRuntime;
    io |= site.cls == SiteClass::kIo;
  }
  EXPECT_TRUE(phase);
  EXPECT_TRUE(runtime);
  EXPECT_TRUE(io);
  EXPECT_EQ(find_site("memory.charge")->cls, SiteClass::kRuntime);
  EXPECT_EQ(find_site("io.write")->cls, SiteClass::kIo);
  EXPECT_EQ(find_site("serve.accept")->cls, SiteClass::kPhase);
  EXPECT_EQ(find_site("serve.manifest.write")->cls, SiteClass::kPhase);
  EXPECT_EQ(find_site("serve.worker.spawn")->cls, SiteClass::kPhase);
  EXPECT_EQ(find_site("made.up.site"), nullptr);
}

TEST_F(FaultPlanTest, KindSiteMatrix) {
  const SiteInfo& phase = *find_site("sweep.entry");
  const SiteInfo& runtime = *find_site("memory.charge");
  const SiteInfo& io_write = *find_site("io.write");
  EXPECT_TRUE(kind_allowed_at(phase, FaultKind::kThrow));
  EXPECT_TRUE(kind_allowed_at(runtime, FaultKind::kBadAlloc));
  EXPECT_FALSE(kind_allowed_at(phase, FaultKind::kWriteError));
  EXPECT_FALSE(kind_allowed_at(io_write, FaultKind::kThrow));
  EXPECT_TRUE(kind_allowed_at(io_write, FaultKind::kShortWrite));
  EXPECT_TRUE(kind_allowed_at(io_write, FaultKind::kWriteError));
  EXPECT_FALSE(kind_allowed_at(io_write, FaultKind::kRenameError));
  EXPECT_FALSE(kind_allowed_at(phase, FaultKind::kNone));
}

TEST_F(FaultPlanTest, RuntimeSiteFiresInEveryBuild) {
  // memory.charge is a kRuntime site: maybe_fire works without the
  // LC_FAULT_POINT markers being compiled in.
  arm("memory.charge", FaultKind::kThrow, /*skip_hits=*/2);
  EXPECT_NO_THROW(maybe_fire("memory.charge"));
  EXPECT_NO_THROW(maybe_fire("memory.charge"));
  EXPECT_THROW(maybe_fire("memory.charge"), std::runtime_error);
  EXPECT_EQ(fire_count(), 1u);
  EXPECT_EQ(fire_count("memory.charge"), 1u);
}

TEST_F(FaultPlanTest, MaxFiresWindowFallsSilent) {
  arm("memory.charge", FaultKind::kBadAlloc, /*skip_hits=*/0, /*sleep_ms=*/0,
      /*max_fires=*/2);
  EXPECT_THROW(maybe_fire("memory.charge"), std::bad_alloc);
  EXPECT_THROW(maybe_fire("memory.charge"), std::bad_alloc);
  EXPECT_NO_THROW(maybe_fire("memory.charge"));
  EXPECT_EQ(fire_count(), 2u);
}

TEST_F(FaultPlanTest, MultipleSitesArmSimultaneously) {
  const StatusOr<FaultPlan> plan = parse_plan(
      "memory.charge:throw:max=1;io.write:write_error:max=1;"
      "io.fsync:fsync_error");
  ASSERT_TRUE(plan.ok());
  ASSERT_TRUE(arm_plan(*plan).ok());
  EXPECT_THROW(maybe_fire("memory.charge"), std::runtime_error);
  EXPECT_EQ(consume_io("io.write"), FaultKind::kWriteError);
  EXPECT_EQ(consume_io("io.write"), FaultKind::kNone);  // max=1 spent
  EXPECT_EQ(consume_io("io.fsync"), FaultKind::kFsyncError);
  EXPECT_EQ(consume_io("io.fsync"), FaultKind::kFsyncError);  // unbounded
  EXPECT_EQ(fire_count(), 4u);
}

TEST_F(FaultPlanTest, DeliveryChannelsDoNotCrossWire) {
  // An io clause never throws out of maybe_fire, and a phase/runtime clause
  // is never returned by consume_io — even when the site name matches.
  const StatusOr<FaultPlan> plan =
      parse_plan("io.write:write_error;memory.charge:throw");
  ASSERT_TRUE(plan.ok());
  ASSERT_TRUE(arm_plan(*plan).ok());
  EXPECT_NO_THROW(maybe_fire("io.write"));
  EXPECT_EQ(consume_io("memory.charge"), FaultKind::kNone);
  EXPECT_EQ(fire_count(), 0u);
}

TEST_F(FaultPlanTest, SkipWindowAppliesToIoSites) {
  const StatusOr<FaultPlan> plan =
      parse_plan("io.rename:rename_error:skip=1:max=2");
  ASSERT_TRUE(plan.ok());
  ASSERT_TRUE(arm_plan(*plan).ok());
  EXPECT_EQ(consume_io("io.rename"), FaultKind::kNone);  // skipped
  EXPECT_EQ(consume_io("io.rename"), FaultKind::kRenameError);
  EXPECT_EQ(consume_io("io.rename"), FaultKind::kRenameError);
  EXPECT_EQ(consume_io("io.rename"), FaultKind::kNone);  // spent
}

TEST_F(FaultPlanTest, SeededProbabilityReplaysIdentically) {
  const StatusOr<FaultPlan> plan =
      parse_plan("seed=99;io.write:write_error:p=0.5");
  ASSERT_TRUE(plan.ok());
  const auto pattern = [&plan] {
    std::vector<bool> fired;
    EXPECT_TRUE(arm_plan(*plan).ok());
    for (int i = 0; i < 64; ++i) {
      fired.push_back(consume_io("io.write") != FaultKind::kNone);
    }
    return fired;
  };
  const std::vector<bool> first = pattern();
  const std::vector<bool> second = pattern();
  EXPECT_EQ(first, second);
  // A p=0.5 stream over 64 hits should actually mix fires and passes.
  EXPECT_NE(std::count(first.begin(), first.end(), true), 0);
  EXPECT_NE(std::count(first.begin(), first.end(), false), 0);
}

TEST_F(FaultPlanTest, CorruptDrawIsDeterministic) {
  const StatusOr<FaultPlan> plan = parse_plan("seed=5;io.corrupt:corrupt:max=1");
  ASSERT_TRUE(plan.ok());
  ASSERT_TRUE(arm_plan(*plan).ok());
  std::uint64_t first = 0;
  EXPECT_EQ(consume_io("io.corrupt", &first), FaultKind::kCorrupt);
  ASSERT_TRUE(arm_plan(*plan).ok());
  std::uint64_t second = 0;
  EXPECT_EQ(consume_io("io.corrupt", &second), FaultKind::kCorrupt);
  EXPECT_EQ(first, second);
}

TEST_F(FaultPlanTest, ActivePlanReportsCanonicalText) {
  EXPECT_EQ(active_plan(), "");
  const StatusOr<FaultPlan> plan =
      parse_plan("seed=3;io.write:short_write:max=1");
  ASSERT_TRUE(plan.ok());
  ASSERT_TRUE(arm_plan(*plan).ok());
  EXPECT_EQ(active_plan(), "seed=3;io.write:short_write:max=1");
  disarm();
  EXPECT_EQ(active_plan(), "");
}

TEST_F(FaultPlanTest, ArmsFromEnvironmentPlan) {
  ASSERT_EQ(::setenv("LC_FAULT_PLAN", "memory.charge:bad_alloc:max=1", 1), 0);
  EXPECT_TRUE(arm_from_env());
  EXPECT_TRUE(any_armed());
  EXPECT_THROW(maybe_fire("memory.charge"), std::bad_alloc);
}

TEST_F(FaultPlanTest, ArmsFromPlanFile) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "lc_fault_plan_test.txt")
          .string();
  {
    std::ofstream file(path);
    file << "seed=21;io.fsync:fsync_error:max=1\n";
  }
  ASSERT_EQ(::setenv("LC_FAULT_PLAN", ("@" + path).c_str(), 1), 0);
  EXPECT_TRUE(arm_from_env());
  EXPECT_EQ(consume_io("io.fsync"), FaultKind::kFsyncError);
  std::filesystem::remove(path);
}

TEST_F(FaultPlanTest, LegacyFaultPointStillArms) {
  ASSERT_EQ(::setenv("LC_FAULT_POINT", "memory.charge:throw:1", 1), 0);
  EXPECT_TRUE(arm_from_env());
  EXPECT_NO_THROW(maybe_fire("memory.charge"));  // skip_hits=1
  EXPECT_THROW(maybe_fire("memory.charge"), std::runtime_error);
}

TEST_F(FaultPlanTest, EnvUnsetArmsNothing) {
  ::unsetenv("LC_FAULT_PLAN");
  ::unsetenv("LC_FAULT_POINT");
  EXPECT_FALSE(arm_from_env());
  EXPECT_FALSE(any_armed());
}

TEST_F(FaultPlanTest, ChargeMemoryDeliversInjectedBadAlloc) {
  arm("memory.charge", FaultKind::kBadAlloc, /*skip_hits=*/0, /*sleep_ms=*/0,
      /*max_fires=*/1);
  RunContext ctx;
  EXPECT_THROW(ctx.charge_memory(1024, "test"), std::bad_alloc);
  EXPECT_NO_THROW(ctx.charge_memory(1024, "test"));
}

TEST_F(FaultPlanTest, InjectedOomSurfacesAsResourceExhausted) {
  // End to end through the clusterer: the runtime memory.charge site turns
  // into the same kResourceExhausted a real failed allocation produces.
  const graph::WeightedGraph graph = graph::erdos_renyi(40, 0.2, {3});
  arm("memory.charge", FaultKind::kBadAlloc);
  core::LinkClusterer::Config config;
  RunContext ctx;
  config.ctx = &ctx;
  const StatusOr<core::ClusterResult> run =
      core::LinkClusterer(config).run(graph);
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kResourceExhausted);
  disarm();
  const StatusOr<core::ClusterResult> healthy =
      core::LinkClusterer(config).run(graph);
  EXPECT_TRUE(healthy.ok()) << healthy.status().to_string();
}

}  // namespace
}  // namespace lc::fault
