#include "eval/clustering_metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/edge_index.hpp"
#include "graph/generators.hpp"

namespace lc::eval {
namespace {

const std::vector<std::uint32_t> kA{0, 0, 0, 1, 1, 1};
const std::vector<std::uint32_t> kB{2, 2, 2, 9, 9, 9};  // same partition, new names
const std::vector<std::uint32_t> kC{0, 0, 1, 1, 2, 2};

TEST(RandIndex, IdenticalPartitionsScoreOne) {
  EXPECT_DOUBLE_EQ(rand_index(kA, kA), 1.0);
  EXPECT_DOUBLE_EQ(rand_index(kA, kB), 1.0);  // label-invariant
}

TEST(RandIndex, KnownHandComputedValue) {
  // A = {0,0,0,1,1,1}, C = {0,0,1,1,2,2}: of the 15 pairs,
  // together-in-both: (0,1), (4,5) = 2; apart-in-both: 3x3 cross pairs minus
  // ... direct count: agreements = 2 + 8 = 10 -> RI = 10/15.
  EXPECT_NEAR(rand_index(kA, kC), 10.0 / 15.0, 1e-12);
}

TEST(RandIndex, SingletonsVsOneCluster) {
  const std::vector<std::uint32_t> singletons{0, 1, 2, 3};
  const std::vector<std::uint32_t> one{5, 5, 5, 5};
  EXPECT_DOUBLE_EQ(rand_index(singletons, one), 0.0);
}

TEST(AdjustedRand, IdenticalIsOne) {
  EXPECT_DOUBLE_EQ(adjusted_rand_index(kA, kB), 1.0);
}

TEST(AdjustedRand, KnownValue) {
  // ARI for kA vs kC: sum_joint = C(2,2)*... contingency:
  //   rows (kA): {3, 3}; cols (kC): {2, 2, 2}
  //   joint: (0,0)=2 (0,1)=1 (1,1)=1 (1,2)=2
  // sum_joint C2 = 1 + 0 + 0 + 1 = 2; sum_row = 3+3 = 6; sum_col = 1*3 = 3;
  // expected = 6*3/15 = 1.2; max = 4.5; ARI = (2-1.2)/(4.5-1.2) = 0.8/3.3.
  EXPECT_NEAR(adjusted_rand_index(kA, kC), 0.8 / 3.3, 1e-12);
}

TEST(AdjustedRand, DegenerateBothTrivial) {
  const std::vector<std::uint32_t> one{7, 7, 7};
  EXPECT_DOUBLE_EQ(adjusted_rand_index(one, one), 1.0);
}

TEST(Nmi, IdenticalIsOne) {
  EXPECT_NEAR(normalized_mutual_information(kA, kB), 1.0, 1e-12);
}

TEST(Nmi, IndependentIsNearZero) {
  // Perfectly crossed partitions share no information.
  const std::vector<std::uint32_t> a{0, 0, 1, 1};
  const std::vector<std::uint32_t> b{0, 1, 0, 1};
  EXPECT_NEAR(normalized_mutual_information(a, b), 0.0, 1e-12);
}

TEST(Nmi, BothSingleClusterIsOne) {
  const std::vector<std::uint32_t> one{3, 3, 3};
  EXPECT_DOUBLE_EQ(normalized_mutual_information(one, one), 1.0);
}

TEST(Nmi, RefinementScoresBetweenZeroAndOne) {
  const double nmi = normalized_mutual_information(kA, kC);
  EXPECT_GT(nmi, 0.5);
  EXPECT_LT(nmi, 1.0);
}

TEST(ClusterSizes, SortedDescending) {
  const auto sizes = cluster_sizes(std::vector<std::uint32_t>{4, 4, 4, 2, 2, 9});
  ASSERT_EQ(sizes.size(), 3u);
  EXPECT_EQ(sizes[0], 3u);
  EXPECT_EQ(sizes[1], 2u);
  EXPECT_EQ(sizes[2], 1u);
}

TEST(OverlapStats, TwoTrianglesSharedVertexOverlaps) {
  // Two triangles sharing vertex 2; edges of each triangle labeled apart.
  graph::GraphBuilder builder(5);
  builder.add_edge(0, 1);
  builder.add_edge(1, 2);
  builder.add_edge(0, 2);
  builder.add_edge(2, 3);
  builder.add_edge(3, 4);
  builder.add_edge(2, 4);
  const graph::WeightedGraph graph = builder.build();
  const core::EdgeIndex index(6, core::EdgeOrder::kNatural);
  // Canonical edges: (0,1),(0,2),(1,2),(2,3),(2,4),(3,4).
  const std::vector<core::EdgeIdx> labels{0, 0, 0, 1, 1, 1};
  const OverlapStats stats = overlap_stats(graph, index, labels);
  EXPECT_EQ(stats.communities, 2u);
  EXPECT_EQ(stats.vertices, 5u);
  EXPECT_EQ(stats.overlapping_vertices, 1u);  // vertex 2 is in both
  EXPECT_NEAR(stats.mean_memberships, 6.0 / 5.0, 1e-12);

  const auto memberships = vertex_memberships(graph, index, labels);
  ASSERT_EQ(memberships.at(2).size(), 2u);
  EXPECT_EQ(memberships.at(0).size(), 1u);
}

TEST(OverlapStats, EmptyGraph) {
  graph::GraphBuilder builder(3);
  const graph::WeightedGraph graph = builder.build();
  const core::EdgeIndex index(0, core::EdgeOrder::kNatural);
  const OverlapStats stats = overlap_stats(graph, index, std::vector<core::EdgeIdx>{});
  EXPECT_EQ(stats.communities, 0u);
  EXPECT_EQ(stats.vertices, 0u);
}

TEST(MetricsDeathTest, MismatchedSizesRejected) {
  const std::vector<std::uint32_t> a{0, 1};
  const std::vector<std::uint32_t> b{0};
  EXPECT_DEATH(rand_index(a, b), "same items");
}

}  // namespace
}  // namespace lc::eval
