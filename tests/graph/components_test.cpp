#include "graph/components.hpp"

#include <gtest/gtest.h>

#include <set>

#include "graph/generators.hpp"

namespace lc::graph {
namespace {

WeightedGraph two_triangles_and_isolated() {
  // Component A: {0,1,2} triangle; component B: {3,4}; vertex 5 isolated.
  GraphBuilder builder(6);
  builder.add_edge(0, 1);
  builder.add_edge(1, 2);
  builder.add_edge(0, 2);
  builder.add_edge(3, 4, 2.5);
  return builder.build();
}

TEST(ConnectedComponents, LabelsAreComponentMinima) {
  const auto labels = connected_components(two_triangles_and_isolated());
  EXPECT_EQ(labels[0], 0u);
  EXPECT_EQ(labels[1], 0u);
  EXPECT_EQ(labels[2], 0u);
  EXPECT_EQ(labels[3], 3u);
  EXPECT_EQ(labels[4], 3u);
  EXPECT_EQ(labels[5], 5u);
}

TEST(ConnectedComponents, CountsIncludeIsolatedVertices) {
  EXPECT_EQ(component_count(two_triangles_and_isolated()), 3u);
  EXPECT_EQ(component_count(complete_graph(5)), 1u);
  GraphBuilder empty(4);
  EXPECT_EQ(component_count(empty.build()), 4u);
}

TEST(ConnectedComponents, MatchesDisjointEdgesConstruction) {
  const WeightedGraph graph = disjoint_edges(7);
  EXPECT_EQ(component_count(graph), 7u);
}

TEST(InducedSubgraph, KeepsInternalEdgesAndWeights) {
  const WeightedGraph graph = two_triangles_and_isolated();
  const Subgraph sub = induced_subgraph(graph, {2, 0, 1, 3});
  EXPECT_EQ(sub.graph.vertex_count(), 4u);
  EXPECT_EQ(sub.graph.edge_count(), 3u);  // triangle only: 3 has no partner
  // New ids follow the given order: 2->0, 0->1, 1->2, 3->3.
  EXPECT_EQ(sub.original_id[0], 2u);
  EXPECT_EQ(sub.original_id[1], 0u);
  EXPECT_TRUE(sub.graph.has_edge(0, 1));  // original (2,0)
  EXPECT_EQ(sub.graph.degree(3), 0u);     // original 3 lost its only neighbor
}

TEST(InducedSubgraph, DuplicatesIgnored) {
  const WeightedGraph graph = two_triangles_and_isolated();
  const Subgraph sub = induced_subgraph(graph, {3, 4, 3, 4});
  EXPECT_EQ(sub.graph.vertex_count(), 2u);
  EXPECT_EQ(sub.graph.edge_count(), 1u);
  EXPECT_DOUBLE_EQ(sub.graph.edges()[0].weight, 2.5);
}

TEST(InducedSubgraph, EmptySelection) {
  const Subgraph sub = induced_subgraph(two_triangles_and_isolated(), {});
  EXPECT_EQ(sub.graph.vertex_count(), 0u);
  EXPECT_EQ(sub.graph.edge_count(), 0u);
}

TEST(InducedSubgraphDeathTest, OutOfRangeVertexRejected) {
  const WeightedGraph graph = two_triangles_and_isolated();
  EXPECT_DEATH(induced_subgraph(graph, {99}), "out of range");
}

TEST(LargestComponent, PicksTheTriangle) {
  const Subgraph sub = largest_component(two_triangles_and_isolated());
  EXPECT_EQ(sub.graph.vertex_count(), 3u);
  EXPECT_EQ(sub.graph.edge_count(), 3u);
  const std::set<VertexId> originals(sub.original_id.begin(), sub.original_id.end());
  EXPECT_EQ(originals, (std::set<VertexId>{0, 1, 2}));
}

TEST(LargestComponent, WholeGraphWhenConnected) {
  const WeightedGraph graph = complete_graph(6);
  const Subgraph sub = largest_component(graph);
  EXPECT_EQ(sub.graph.vertex_count(), 6u);
  EXPECT_EQ(sub.graph.edge_count(), 15u);
}

TEST(LargestComponent, RandomGraphInvariants) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    const WeightedGraph graph = erdos_renyi(80, 0.02, {seed});
    const Subgraph sub = largest_component(graph);
    EXPECT_EQ(component_count(sub.graph), sub.graph.vertex_count() > 0 ? 1u : 0u);
    EXPECT_LE(sub.graph.vertex_count(), graph.vertex_count());
    // Every subgraph edge exists in the original with the same weight.
    for (const Edge& e : sub.graph.edges()) {
      const auto weight = graph.edge_weight(sub.original_id[e.u], sub.original_id[e.v]);
      ASSERT_TRUE(weight.has_value());
      EXPECT_DOUBLE_EQ(*weight, e.weight);
    }
  }
}

}  // namespace
}  // namespace lc::graph
