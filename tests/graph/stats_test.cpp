#include "graph/stats.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"

namespace lc::graph {
namespace {

TEST(Stats, PaperFigure1Counts) {
  // The paper quotes K1 = 7 < K2 = 16 < K3 = 28 for its Figure-1 example.
  const WeightedGraph graph = paper_figure1_graph();
  const GraphStats stats = compute_stats(graph);
  EXPECT_EQ(stats.vertices, 6u);
  EXPECT_EQ(stats.edges, 8u);
  EXPECT_EQ(stats.k1, 7u);
  EXPECT_EQ(stats.k2, 16u);
  EXPECT_EQ(stats.k3, 28u);
}

TEST(Stats, OrderingInvariantHolds) {
  // K1 <= K2 <= K3 for any graph (§IV-C).
  for (std::uint64_t seed : {1u, 2u, 3u, 4u}) {
    const WeightedGraph graph = erdos_renyi(40, 0.15, {seed});
    const GraphStats stats = compute_stats(graph);
    EXPECT_LE(stats.k1, stats.k2);
    EXPECT_LE(stats.k2, stats.k3);
  }
}

TEST(Stats, DisjointEdgesPathologicalCase) {
  // The paper's example where K1 = K2 = 0 but |E| = |V|/2.
  const WeightedGraph graph = disjoint_edges(10);
  const GraphStats stats = compute_stats(graph);
  EXPECT_EQ(stats.vertices, 20u);
  EXPECT_EQ(stats.edges, 10u);
  EXPECT_EQ(stats.k1, 0u);
  EXPECT_EQ(stats.k2, 0u);
  EXPECT_EQ(stats.k3, 45u);
}

TEST(Stats, TriangleCounts) {
  GraphBuilder builder(3);
  builder.add_edge(0, 1);
  builder.add_edge(1, 2);
  builder.add_edge(0, 2);
  const GraphStats stats = compute_stats(builder.build());
  // Each vertex has degree 2 -> K2 = 3. Every pair shares a neighbor -> K1 = 3.
  EXPECT_EQ(stats.k1, 3u);
  EXPECT_EQ(stats.k2, 3u);
  EXPECT_EQ(stats.k3, 3u);
}

TEST(Stats, StarGraph) {
  // Star S_5: hub 0 with 5 leaves. K2 = C(5,2) = 10; K1 = 10 (leaf pairs).
  GraphBuilder builder(6);
  for (VertexId leaf = 1; leaf <= 5; ++leaf) builder.add_edge(0, leaf);
  const GraphStats stats = compute_stats(builder.build());
  EXPECT_EQ(stats.k2, 10u);
  EXPECT_EQ(stats.k1, 10u);
  EXPECT_EQ(stats.max_degree, 5u);
}

TEST(Stats, CompleteGraphFormulas) {
  // K_n: K2 = n * C(n-1, 2); K1 = C(n, 2) (the paper's Appendix example).
  const std::size_t n = 7;
  const GraphStats stats = compute_stats(complete_graph(n));
  EXPECT_EQ(stats.k2, n * (n - 1) * (n - 2) / 2);
  EXPECT_EQ(stats.k1, n * (n - 1) / 2);
  EXPECT_DOUBLE_EQ(stats.density, 1.0);
}

TEST(Stats, RegularGraphK2Formula) {
  // k-regular: K2 = n * k(k-1)/2 (paper Appendix: K2 = |V| k (k-1) / 4 * 2).
  const std::size_t n = 24;
  const std::size_t k = 6;
  const GraphStats stats = compute_stats(regular_graph(n, k));
  EXPECT_EQ(stats.edges, n * k / 2);
  EXPECT_EQ(stats.k2, n * k * (k - 1) / 2);
}

TEST(Stats, MeanDegree) {
  const WeightedGraph graph = complete_graph(5);
  const GraphStats stats = compute_stats(graph);
  EXPECT_DOUBLE_EQ(stats.mean_degree, 4.0);
}

TEST(Stats, EmptyGraph) {
  GraphBuilder builder(0);
  const GraphStats stats = compute_stats(builder.build());
  EXPECT_EQ(stats.k1, 0u);
  EXPECT_EQ(stats.k2, 0u);
  EXPECT_EQ(stats.k3, 0u);
  EXPECT_DOUBLE_EQ(stats.mean_degree, 0.0);
}

}  // namespace
}  // namespace lc::graph
