#include "graph/generators.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace lc::graph {
namespace {

TEST(ErdosRenyi, EdgeCountNearExpectation) {
  const std::size_t n = 200;
  const double p = 0.1;
  const WeightedGraph graph = erdos_renyi(n, p, {123});
  const double expected = p * static_cast<double>(n) * (n - 1) / 2.0;
  EXPECT_NEAR(static_cast<double>(graph.edge_count()), expected, 4.0 * std::sqrt(expected));
}

TEST(ErdosRenyi, Deterministic) {
  const WeightedGraph a = erdos_renyi(50, 0.2, {9});
  const WeightedGraph b = erdos_renyi(50, 0.2, {9});
  ASSERT_EQ(a.edge_count(), b.edge_count());
  EXPECT_EQ(a.edges(), b.edges());
}

TEST(ErdosRenyi, ExtremeProbabilities) {
  EXPECT_EQ(erdos_renyi(20, 0.0).edge_count(), 0u);
  EXPECT_EQ(erdos_renyi(20, 1.0).edge_count(), 190u);
}

TEST(ErdosRenyi, NoSelfLoopsOrDuplicates) {
  const WeightedGraph graph = erdos_renyi(60, 0.3, {5});
  for (const Edge& e : graph.edges()) EXPECT_LT(e.u, e.v);
  for (std::size_t i = 1; i < graph.edges().size(); ++i) {
    const Edge& a = graph.edges()[i - 1];
    const Edge& b = graph.edges()[i];
    EXPECT_TRUE(a.u < b.u || (a.u == b.u && a.v < b.v));
  }
}

TEST(CompleteGraph, AllPairsPresent) {
  const WeightedGraph graph = complete_graph(6);
  EXPECT_EQ(graph.edge_count(), 15u);
  for (VertexId i = 0; i < 6; ++i) EXPECT_EQ(graph.degree(i), 5u);
}

TEST(RegularGraph, DegreesUniform) {
  const WeightedGraph graph = regular_graph(20, 4);
  for (VertexId v = 0; v < 20; ++v) EXPECT_EQ(graph.degree(v), 4u);
  EXPECT_EQ(graph.edge_count(), 40u);
}

TEST(RegularGraphDeathTest, OddDegreeRejected) {
  EXPECT_DEATH(regular_graph(10, 3), "even");
}

TEST(BarabasiAlbert, EdgeCountAndHubFormation) {
  const std::size_t n = 300;
  const std::size_t attach = 3;
  const WeightedGraph graph = barabasi_albert(n, attach, {7});
  // Seed clique C(4,2)=6 edges + ~3 per subsequent vertex.
  EXPECT_GE(graph.edge_count(), (n - attach - 1) * attach / 2);
  EXPECT_LE(graph.edge_count(), 6 + (n - attach - 1) * attach);
  std::size_t max_degree = 0;
  for (VertexId v = 0; v < n; ++v) max_degree = std::max(max_degree, graph.degree(v));
  // Preferential attachment must form hubs far above the mean degree (~6).
  EXPECT_GT(max_degree, 15u);
}

TEST(WattsStrogatz, PreservesEdgeBudgetApproximately) {
  const WeightedGraph graph = watts_strogatz(100, 6, 0.1, {3});
  // Rewiring can collide into duplicates which merge, so <= n*k/2.
  EXPECT_LE(graph.edge_count(), 300u);
  EXPECT_GE(graph.edge_count(), 270u);
}

TEST(WattsStrogatz, ZeroBetaIsRegularRing) {
  const WeightedGraph graph = watts_strogatz(30, 4, 0.0, {3});
  for (VertexId v = 0; v < 30; ++v) EXPECT_EQ(graph.degree(v), 4u);
}

TEST(PlantedPartition, IntraDensityExceedsInter) {
  const std::size_t n = 120;
  const std::size_t communities = 4;
  const WeightedGraph graph = planted_partition(n, communities, 0.5, 0.02, {11});
  std::size_t intra = 0;
  std::size_t inter = 0;
  for (const Edge& e : graph.edges()) {
    if (e.u % communities == e.v % communities) ++intra;
    else ++inter;
  }
  EXPECT_GT(intra, inter);
}

TEST(DisjointEdges, StructureExact) {
  const WeightedGraph graph = disjoint_edges(5);
  EXPECT_EQ(graph.vertex_count(), 10u);
  EXPECT_EQ(graph.edge_count(), 5u);
  for (VertexId v = 0; v < 10; ++v) EXPECT_EQ(graph.degree(v), 1u);
}

TEST(Generators, UniformWeightPolicyInRange) {
  GeneratorOptions options;
  options.weights = WeightPolicy::kUniform;
  options.seed = 4;
  const WeightedGraph graph = erdos_renyi(40, 0.3, options);
  for (const Edge& e : graph.edges()) {
    EXPECT_GT(e.weight, 0.1 - 1e-12);
    EXPECT_LE(e.weight, 1.0);
  }
}

TEST(PaperFigure1Graph, IsKTwoFour) {
  const WeightedGraph graph = paper_figure1_graph();
  EXPECT_EQ(graph.vertex_count(), 6u);
  EXPECT_EQ(graph.edge_count(), 8u);
  EXPECT_EQ(graph.degree(0), 4u);
  EXPECT_EQ(graph.degree(1), 4u);
  for (VertexId leaf = 2; leaf < 6; ++leaf) EXPECT_EQ(graph.degree(leaf), 2u);
  EXPECT_FALSE(graph.has_edge(0, 1));
}

}  // namespace
}  // namespace lc::graph
