#include "graph/io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "graph/generators.hpp"

namespace lc::graph {
namespace {

TEST(GraphIo, StreamRoundTrip) {
  const WeightedGraph original = erdos_renyi(30, 0.2, {77, WeightPolicy::kUniform});
  std::stringstream buffer;
  ASSERT_TRUE(write_edge_list(original, buffer).ok);
  IoResult result;
  const auto loaded = read_edge_list(buffer, &result);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(result.lines_skipped, 0u);
  ASSERT_EQ(loaded->edge_count(), original.edge_count());
  for (std::size_t i = 0; i < original.edge_count(); ++i) {
    EXPECT_EQ(loaded->edges()[i].u, original.edges()[i].u);
    EXPECT_EQ(loaded->edges()[i].v, original.edges()[i].v);
    EXPECT_NEAR(loaded->edges()[i].weight, original.edges()[i].weight, 1e-9);
  }
}

TEST(GraphIo, FileRoundTrip) {
  const WeightedGraph original = complete_graph(5);
  const std::string path = testing::TempDir() + "/lc_io_test.edges";
  ASSERT_TRUE(write_edge_list(original, path).ok);
  const auto loaded = read_edge_list(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->edge_count(), 10u);
  std::remove(path.c_str());
}

TEST(GraphIo, CommentsAndBlanksIgnored) {
  std::stringstream in("# comment\n\n0 1 2.0\n   \n# another\n1 2\n");
  IoResult result;
  const auto graph = read_edge_list(in, &result);
  ASSERT_TRUE(graph.has_value());
  EXPECT_EQ(graph->edge_count(), 2u);
  EXPECT_DOUBLE_EQ(graph->edges()[0].weight, 2.0);
  EXPECT_DOUBLE_EQ(graph->edges()[1].weight, 1.0);  // default weight
  EXPECT_EQ(result.lines_skipped, 0u);
}

TEST(GraphIo, MalformedLinesSkippedNotFatal) {
  std::stringstream in("0 1 1.0\nnot numbers\n2 2 1.0\n3 4 -1.0\n5 6 2.0\n");
  IoResult result;
  const auto graph = read_edge_list(in, &result);
  ASSERT_TRUE(graph.has_value());
  EXPECT_EQ(graph->edge_count(), 2u);  // (0,1) and (5,6)
  EXPECT_EQ(result.lines_skipped, 3u);  // junk, self-loop, negative weight
}

TEST(GraphIo, NonNumericWeightIsSkippedNotDefaulted) {
  // "1 2 abc" must be counted as malformed — not silently read as weight 1.0.
  std::stringstream in("0 1 2.0\n1 2 abc\n3 4\n");
  IoResult result;
  const auto graph = read_edge_list(in, &result);
  ASSERT_TRUE(graph.has_value());
  EXPECT_EQ(graph->edge_count(), 2u);  // (0,1) weighted, (3,4) default
  EXPECT_EQ(result.lines_skipped, 1u);
  EXPECT_FALSE(graph->has_edge(1, 2));
  EXPECT_DOUBLE_EQ(graph->edges()[1].weight, 1.0);
}

struct BadLineCase {
  const char* name;
  const char* line;
};

TEST(GraphIo, RejectedWeightAndIdForms) {
  // Every case is one bad line sandwiched between two good ones: the good
  // edges must survive and exactly the bad line must be counted.
  const BadLineCase cases[] = {
      {"garbage weight token", "1 2 abc"},
      {"zero weight", "1 2 0"},
      {"negative weight", "1 2 -3.5"},
      {"infinite weight", "1 2 inf"},
      {"negative infinite weight", "1 2 -inf"},
      {"nan weight", "1 2 nan"},
      {"huge first id", "4294967296 2 1.0"},
      {"huge second id", "1 99999999999 1.0"},
      {"self loop", "7 7 1.0"},
      {"lone token", "12"},
      {"negative id", "-1 2 1.0"},
  };
  for (const BadLineCase& c : cases) {
    std::stringstream in(std::string("0 1 1.0\n") + c.line + "\n3 4 2.0\n");
    IoResult result;
    const auto graph = read_edge_list(in, &result);
    ASSERT_TRUE(graph.has_value()) << c.name;
    EXPECT_EQ(graph->edge_count(), 2u) << c.name;
    EXPECT_EQ(result.lines_skipped, 1u) << c.name;
    EXPECT_TRUE(graph->has_edge(0, 1)) << c.name;
    EXPECT_TRUE(graph->has_edge(3, 4)) << c.name;
  }
}

TEST(GraphIo, CommentOnlyFileGivesEmptyGraph) {
  std::stringstream in("# a\n# b\n\n   \n# c\n");
  IoResult result;
  const auto graph = read_edge_list(in, &result);
  ASSERT_TRUE(graph.has_value());
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(result.lines_skipped, 0u);
  EXPECT_EQ(graph->vertex_count(), 0u);
  EXPECT_EQ(graph->edge_count(), 0u);
}

TEST(GraphIo, MissingFileFails) {
  IoResult result;
  const auto graph = read_edge_list(std::string("/no/such/file.edges"), &result);
  EXPECT_FALSE(graph.has_value());
  EXPECT_FALSE(result.ok);
  EXPECT_FALSE(result.error.empty());
}

TEST(GraphIo, EmptyStreamGivesEmptyGraph) {
  std::stringstream in("");
  const auto graph = read_edge_list(in);
  ASSERT_TRUE(graph.has_value());
  EXPECT_EQ(graph->vertex_count(), 0u);
  EXPECT_EQ(graph->edge_count(), 0u);
}

TEST(GraphIo, SparseVertexIdsCreateRange) {
  std::stringstream in("10 20 1.5\n");
  const auto graph = read_edge_list(in);
  ASSERT_TRUE(graph.has_value());
  EXPECT_EQ(graph->vertex_count(), 21u);
  EXPECT_TRUE(graph->has_edge(10, 20));
}

}  // namespace
}  // namespace lc::graph
