#include "graph/graph.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace lc::graph {
namespace {

TEST(GraphBuilder, RejectsSelfLoops) {
  GraphBuilder builder(3);
  EXPECT_FALSE(builder.add_edge(1, 1));
  EXPECT_EQ(builder.edge_count(), 0u);
}

TEST(GraphBuilder, RejectsOutOfRangeVertices) {
  GraphBuilder builder(3);
  EXPECT_FALSE(builder.add_edge(0, 3));
  EXPECT_FALSE(builder.add_edge(5, 1));
}

TEST(GraphBuilder, RejectsBadWeights) {
  GraphBuilder builder(3);
  EXPECT_FALSE(builder.add_edge(0, 1, 0.0));
  EXPECT_FALSE(builder.add_edge(0, 1, -2.0));
  EXPECT_FALSE(builder.add_edge(0, 1, std::numeric_limits<double>::quiet_NaN()));
  EXPECT_FALSE(builder.add_edge(0, 1, std::numeric_limits<double>::infinity()));
}

TEST(GraphBuilder, DuplicatesAccumulateWeight) {
  GraphBuilder builder(3);
  EXPECT_TRUE(builder.add_edge(0, 1, 1.0));
  EXPECT_TRUE(builder.add_edge(1, 0, 2.5));  // reversed orientation, same edge
  const WeightedGraph graph = builder.build();
  EXPECT_EQ(graph.edge_count(), 1u);
  EXPECT_DOUBLE_EQ(graph.edges()[0].weight, 3.5);
}

TEST(WeightedGraph, CanonicalEdgeOrientation) {
  GraphBuilder builder(4);
  builder.add_edge(3, 1, 1.0);
  const WeightedGraph graph = builder.build();
  EXPECT_EQ(graph.edges()[0].u, 1u);
  EXPECT_EQ(graph.edges()[0].v, 3u);
}

TEST(WeightedGraph, NeighborsSortedWithWeightsAndIds) {
  GraphBuilder builder(5);
  builder.add_edge(2, 4, 0.4);
  builder.add_edge(2, 0, 0.1);
  builder.add_edge(2, 3, 0.3);
  builder.add_edge(2, 1, 0.2);
  const WeightedGraph graph = builder.build();
  const auto adj = graph.neighbors(2);
  ASSERT_EQ(adj.size(), 4u);
  EXPECT_TRUE(std::is_sorted(adj.begin(), adj.end()));
  const auto weights = graph.neighbor_weights(2);
  EXPECT_DOUBLE_EQ(weights[0], 0.1);
  EXPECT_DOUBLE_EQ(weights[3], 0.4);
  const auto ids = graph.neighbor_edge_ids(2);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const Edge& e = graph.edge(ids[i]);
    EXPECT_TRUE(e.u == 2 || e.v == 2);
    EXPECT_TRUE(e.u == adj[i] || e.v == adj[i]);
  }
}

TEST(WeightedGraph, EdgeIdsFollowCanonicalOrder) {
  GraphBuilder builder(4);
  builder.add_edge(2, 3, 1.0);
  builder.add_edge(0, 1, 1.0);
  builder.add_edge(0, 3, 1.0);
  const WeightedGraph graph = builder.build();
  EXPECT_EQ(graph.edge(0).u, 0u);
  EXPECT_EQ(graph.edge(0).v, 1u);
  EXPECT_EQ(graph.edge(1).u, 0u);
  EXPECT_EQ(graph.edge(1).v, 3u);
  EXPECT_EQ(graph.edge(2).u, 2u);
  EXPECT_EQ(graph.edge(2).v, 3u);
}

TEST(WeightedGraph, FindEdgeBothDirections) {
  GraphBuilder builder(4);
  builder.add_edge(1, 3, 2.0);
  const WeightedGraph graph = builder.build();
  EXPECT_NE(graph.find_edge(1, 3), kInvalidEdge);
  EXPECT_EQ(graph.find_edge(1, 3), graph.find_edge(3, 1));
  EXPECT_EQ(graph.find_edge(0, 1), kInvalidEdge);
  EXPECT_EQ(graph.find_edge(1, 1), kInvalidEdge);
  EXPECT_TRUE(graph.has_edge(3, 1));
  EXPECT_FALSE(graph.has_edge(0, 2));
}

TEST(WeightedGraph, EdgeWeightLookup) {
  GraphBuilder builder(3);
  builder.add_edge(0, 2, 0.75);
  const WeightedGraph graph = builder.build();
  ASSERT_TRUE(graph.edge_weight(2, 0).has_value());
  EXPECT_DOUBLE_EQ(*graph.edge_weight(2, 0), 0.75);
  EXPECT_FALSE(graph.edge_weight(0, 1).has_value());
}

TEST(WeightedGraph, DensityFormula) {
  GraphBuilder builder(4);  // complete K4 has density 1
  for (VertexId i = 0; i < 4; ++i) {
    for (VertexId j = i + 1; j < 4; ++j) builder.add_edge(i, j);
  }
  EXPECT_DOUBLE_EQ(builder.build().density(), 1.0);

  GraphBuilder sparse(4);
  sparse.add_edge(0, 1);
  EXPECT_DOUBLE_EQ(sparse.build().density(), 2.0 / 12.0);
}

TEST(WeightedGraph, EmptyGraph) {
  GraphBuilder builder(0);
  const WeightedGraph graph = builder.build();
  EXPECT_EQ(graph.vertex_count(), 0u);
  EXPECT_EQ(graph.edge_count(), 0u);
  EXPECT_DOUBLE_EQ(graph.density(), 0.0);
}

TEST(WeightedGraph, IsolatedVerticesHaveNoNeighbors) {
  GraphBuilder builder(5);
  builder.add_edge(0, 1);
  const WeightedGraph graph = builder.build();
  EXPECT_EQ(graph.degree(2), 0u);
  EXPECT_TRUE(graph.neighbors(4).empty());
}

TEST(WeightedGraph, MemoryBytesPositive) {
  GraphBuilder builder(3);
  builder.add_edge(0, 1);
  EXPECT_GT(builder.build().memory_bytes(), 0u);
}

}  // namespace
}  // namespace lc::graph
