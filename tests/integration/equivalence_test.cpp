// Cross-implementation equivalence: the paper's fast sweep, the NBM standard
// baseline, and SLINK must produce the same single-linkage structure on the
// same edge-similarity input — identical merge-height multisets and identical
// flat clusterings at every non-tie threshold. This is the core correctness
// claim of the reproduction.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "baseline/nbm.hpp"
#include "baseline/slink.hpp"
#include "core/similarity.hpp"
#include "core/sweep.hpp"
#include "graph/generators.hpp"
#include "text/association.hpp"
#include "text/corpus.hpp"
#include "text/tokenizer.hpp"

namespace lc {
namespace {

using graph::WeightedGraph;

struct EquivalenceCase {
  const char* name;
  WeightedGraph (*make)(std::uint64_t seed);
};

WeightedGraph make_er(std::uint64_t seed) {
  return graph::erdos_renyi(24, 0.25, {seed, graph::WeightPolicy::kUniform});
}
WeightedGraph make_ba(std::uint64_t seed) {
  return graph::barabasi_albert(22, 2, {seed, graph::WeightPolicy::kUniform});
}
WeightedGraph make_planted(std::uint64_t seed) {
  return graph::planted_partition(21, 3, 0.7, 0.08, {seed, graph::WeightPolicy::kUniform});
}
WeightedGraph make_ws(std::uint64_t seed) {
  return graph::watts_strogatz(24, 4, 0.3, {seed, graph::WeightPolicy::kUniform});
}
WeightedGraph make_unit_er(std::uint64_t seed) {
  // Unit weights generate heavy similarity ties: the tie-handling stress case.
  return graph::erdos_renyi(20, 0.3, {seed, graph::WeightPolicy::kUnit});
}
WeightedGraph make_word_graph(std::uint64_t seed) {
  text::SyntheticCorpusOptions options;
  options.num_documents = 400;
  options.vocab_size = 300;
  options.num_topics = 6;
  options.seed = seed;
  const text::Corpus corpus = text::generate_corpus(options);
  std::vector<text::TokenizedDocument> docs;
  for (const std::string& doc : corpus.documents) docs.push_back(text::tokenize(doc));
  const text::Vocabulary vocab = text::Vocabulary::build(docs);
  auto ag = text::build_association_graph(docs, vocab, 0.08);
  return std::move(ag.graph);
}

class Equivalence : public testing::TestWithParam<EquivalenceCase> {};

TEST_P(Equivalence, SweepNbmSlinkAgree) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    const WeightedGraph graph = GetParam().make(seed);
    if (graph.edge_count() < 3) continue;
    core::SimilarityMap map = core::build_similarity_map(graph);
    map.sort_by_score();
    const core::EdgeIndex index(graph.edge_count(), core::EdgeOrder::kShuffled, seed);

    const core::SweepResult sweep_result = core::sweep(graph, map, index);
    const auto matrix = baseline::EdgeSimilarityMatrix::build(graph, map, index);
    ASSERT_TRUE(matrix.has_value());
    const baseline::NbmResult nbm = baseline::nbm_cluster(*matrix, {/*stop_at_zero=*/true});
    const baseline::SlinkResult slink = baseline::slink_cluster(*matrix);

    // (1) Merge-height multisets agree (sweep/NBM exactly over positive
    // heights; SLINK through its float matrix).
    std::vector<double> sweep_heights;
    for (const core::MergeEvent& e : sweep_result.dendrogram.events()) {
      sweep_heights.push_back(e.similarity);
    }
    std::vector<double> nbm_heights;
    for (const core::MergeEvent& e : nbm.dendrogram.events()) {
      nbm_heights.push_back(e.similarity);
    }
    std::vector<double> slink_heights;
    for (double s : slink.merge_similarities()) {
      if (s > 1e-9) slink_heights.push_back(s);
    }
    std::sort(sweep_heights.begin(), sweep_heights.end());
    std::sort(nbm_heights.begin(), nbm_heights.end());
    std::sort(slink_heights.begin(), slink_heights.end());
    ASSERT_EQ(sweep_heights.size(), nbm_heights.size())
        << GetParam().name << " seed " << seed;
    ASSERT_EQ(sweep_heights.size(), slink_heights.size())
        << GetParam().name << " seed " << seed;
    for (std::size_t i = 0; i < sweep_heights.size(); ++i) {
      EXPECT_NEAR(sweep_heights[i], nbm_heights[i], 1e-5) << GetParam().name << " " << i;
      EXPECT_NEAR(sweep_heights[i], slink_heights[i], 1e-5) << GetParam().name << " " << i;
    }

    // (2) Flat clusterings agree at thresholds strictly between heights.
    std::vector<double> distinct = sweep_heights;
    distinct.erase(std::unique(distinct.begin(), distinct.end(),
                               [](double a, double b) { return std::fabs(a - b) < 1e-7; }),
                   distinct.end());
    std::vector<double> thresholds;
    for (std::size_t i = 0; i + 1 < distinct.size(); ++i) {
      thresholds.push_back(0.5 * (distinct[i] + distinct[i + 1]));
    }
    if (!distinct.empty()) {
      thresholds.push_back(distinct.front() / 2.0);
      thresholds.push_back((distinct.back() + 1.0) / 2.0);
    }
    for (double threshold : thresholds) {
      const auto sweep_labels = sweep_result.dendrogram.labels_at_threshold(threshold);
      const auto nbm_labels = nbm.dendrogram.labels_at_threshold(threshold);
      const auto slink_labels = slink.labels_at_threshold(threshold);
      EXPECT_EQ(sweep_labels, nbm_labels)
          << GetParam().name << " seed " << seed << " threshold " << threshold;
      EXPECT_EQ(sweep_labels, slink_labels)
          << GetParam().name << " seed " << seed << " threshold " << threshold;
    }

    // (3) Final sweep partition equals NBM's stop-at-zero partition.
    const auto nbm_final = nbm.dendrogram.labels_at_threshold(1e-12);
    EXPECT_EQ(sweep_result.final_labels, nbm_final) << GetParam().name << " seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Graphs, Equivalence,
                         testing::Values(EquivalenceCase{"erdos_renyi", make_er},
                                         EquivalenceCase{"barabasi_albert", make_ba},
                                         EquivalenceCase{"planted_partition", make_planted},
                                         EquivalenceCase{"watts_strogatz", make_ws},
                                         EquivalenceCase{"unit_weights_ties", make_unit_er},
                                         EquivalenceCase{"word_association", make_word_graph}),
                         [](const testing::TestParamInfo<EquivalenceCase>& info) {
                           return info.param.name;
                         });

}  // namespace
}  // namespace lc
