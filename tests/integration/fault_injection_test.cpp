// Fault-injection integration suite (requires -DLC_FAULT_INJECT=ON; see
// tests/CMakeLists.txt). Each test arms one LC_FAULT_POINT site inside a
// clustering phase and proves the failure surfaces as a non-OK Status from
// LinkClusterer::run() — never a process death — and that a disarmed rerun
// reproduces the exact pre-fault dendrogram.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <bit>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "baseline/edge_similarity_matrix.hpp"
#include "baseline/nbm.hpp"
#include "core/dendrogram.hpp"
#include "core/link_clusterer.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "serve/run_supervisor.hpp"
#include "serve/server.hpp"
#include "util/fault_inject.hpp"
#include "util/run_context.hpp"
#include "util/status.hpp"

#ifndef LC_FAULT_INJECT
#error "fault_injection_test.cpp must be compiled with -DLC_FAULT_INJECT"
#endif

namespace lc::core {
namespace {

const graph::WeightedGraph& test_graph() {
  static const graph::WeightedGraph graph =
      graph::erdos_renyi(300, 0.05, {11, graph::WeightPolicy::kUniform});
  return graph;
}

LinkClusterer::Config make_config(std::size_t threads, PairMapKind kind,
                                  ClusterMode mode,
                                  BuildStrategy strategy = BuildStrategy::kGatherSimd) {
  LinkClusterer::Config config;
  config.threads = threads;
  config.map_kind = kind;
  config.mode = mode;
  config.build_strategy = strategy;
  return config;
}

/// FNV-1a over the merge-event stream (same digest as bench/micro_core):
/// any difference in merge order, partners, or heights changes it.
std::uint64_t dendrogram_digest(const Dendrogram& dendrogram) {
  std::uint64_t h = 14695981039346656037ull;
  const auto mix = [&h](std::uint64_t word) {
    for (int byte = 0; byte < 8; ++byte) {
      h ^= (word >> (byte * 8)) & 0xFFu;
      h *= 1099511628211ull;
    }
  };
  for (const MergeEvent& event : dendrogram.events()) {
    mix((static_cast<std::uint64_t>(event.level) << 32) | event.from);
    mix(event.into);
    mix(std::bit_cast<std::uint64_t>(event.similarity));
  }
  return h;
}

class FaultInjectionTest : public ::testing::Test {
 protected:
  void TearDown() override { fault::disarm(); }
};

struct SiteCase {
  const char* site;
  std::size_t threads;
  PairMapKind kind;
  ClusterMode mode;
  /// The sharded-internal sites (pass-2 scatter, staging arena, assembly)
  /// are only reachable when the config forces BuildStrategy::kSharded; the
  /// session default builds through the gather path and its build.gather
  /// site.
  BuildStrategy strategy = BuildStrategy::kGatherSimd;
};

// Every site paired with a configuration whose code path reaches it.
const SiteCase kThrowCases[] = {
    {"sim.pass1", 1, PairMapKind::kHash, ClusterMode::kFine},
    {"build.gather", 1, PairMapKind::kHash, ClusterMode::kFine},
    {"sweep.entry", 1, PairMapKind::kHash, ClusterMode::kFine},
    {"sim.pass1", 8, PairMapKind::kHash, ClusterMode::kFine},
    {"build.gather", 8, PairMapKind::kHash, ClusterMode::kFine},
    {"sim.pass2.serial", 1, PairMapKind::kHash, ClusterMode::kFine,
     BuildStrategy::kSharded},
    {"sim.pass3", 1, PairMapKind::kHash, ClusterMode::kFine, BuildStrategy::kSharded},
    {"sim.pass2.count", 8, PairMapKind::kHash, ClusterMode::kFine,
     BuildStrategy::kSharded},
    {"sim.pass2.fill", 8, PairMapKind::kHash, ClusterMode::kFine,
     BuildStrategy::kSharded},
    {"sim.pass2.shard", 8, PairMapKind::kHash, ClusterMode::kFine,
     BuildStrategy::kSharded},
    {"sim.staging.alloc", 8, PairMapKind::kHash, ClusterMode::kFine,
     BuildStrategy::kSharded},
    {"sim.pass3", 8, PairMapKind::kHash, ClusterMode::kFine, BuildStrategy::kSharded},
    {"sim.assemble", 8, PairMapKind::kHash, ClusterMode::kFine,
     BuildStrategy::kSharded},
    {"sim.flat.emit", 1, PairMapKind::kFlat, ClusterMode::kFine},
    {"sim.flat.emit", 8, PairMapKind::kFlat, ClusterMode::kFine},
    {"sweep.entry", 8, PairMapKind::kHash, ClusterMode::kFine},
    // sweep.bucket sits inside BucketSweepSource::sort_bucket — the default
    // lazy backend reaches it on the caller thread (first bucket) and on the
    // prefetch thread (later buckets, rethrown at the handoff).
    {"sweep.bucket", 1, PairMapKind::kHash, ClusterMode::kFine},
    {"sweep.bucket", 8, PairMapKind::kHash, ClusterMode::kFine},
    {"sweep.bucket", 8, PairMapKind::kHash, ClusterMode::kCoarse},
    {"coarse.chunk", 1, PairMapKind::kHash, ClusterMode::kCoarse},
    {"coarse.apply", 1, PairMapKind::kHash, ClusterMode::kCoarse},
    {"coarse.cas_union", 1, PairMapKind::kHash, ClusterMode::kCoarse},
    {"coarse.journal", 1, PairMapKind::kHash, ClusterMode::kCoarse},
    {"coarse.chunk", 8, PairMapKind::kHash, ClusterMode::kCoarse},
    {"coarse.apply", 8, PairMapKind::kHash, ClusterMode::kCoarse},
    {"coarse.cas_union", 8, PairMapKind::kHash, ClusterMode::kCoarse},
    {"coarse.journal", 8, PairMapKind::kHash, ClusterMode::kCoarse},
};

TEST_F(FaultInjectionTest, ThrowAtEverySiteBecomesInternalStatus) {
  for (const SiteCase& c : kThrowCases) {
    SCOPED_TRACE(testing::Message() << c.site << " threads=" << c.threads);
    fault::arm(c.site, fault::FaultKind::kThrow);
    const StatusOr<ClusterResult> run =
        LinkClusterer(make_config(c.threads, c.kind, c.mode, c.strategy))
            .run(test_graph());
    EXPECT_GE(fault::fire_count(), 1u) << "site never reached";
    ASSERT_FALSE(run.ok());
    EXPECT_EQ(run.status().code(), StatusCode::kInternal);
    EXPECT_NE(run.status().message().find("injected fault"), std::string::npos);
    EXPECT_NE(run.status().message().find(c.site), std::string::npos);
    fault::disarm();
  }
}

TEST_F(FaultInjectionTest, SnapshotSiteFiresWhenContextAttached) {
  // coarse.snapshot only exists on the accounting path, so it needs a ctx.
  RunContext ctx;
  LinkClusterer::Config config =
      make_config(1, PairMapKind::kHash, ClusterMode::kCoarse);
  config.ctx = &ctx;
  fault::arm("coarse.snapshot", fault::FaultKind::kThrow);
  const StatusOr<ClusterResult> run = LinkClusterer(config).run(test_graph());
  EXPECT_GE(fault::fire_count(), 1u);
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kInternal);
}

TEST_F(FaultInjectionTest, BadAllocBecomesResourceExhausted) {
  fault::arm("sim.staging.alloc", fault::FaultKind::kBadAlloc);
  const StatusOr<ClusterResult> run =
      LinkClusterer(make_config(8, PairMapKind::kHash, ClusterMode::kFine,
                                BuildStrategy::kSharded))
          .run(test_graph());
  EXPECT_GE(fault::fire_count(), 1u);
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(run.status().message().find("allocation failed"), std::string::npos);
}

TEST_F(FaultInjectionTest, SleepTripsArmedDeadline) {
  // Pass 1 stalls past the deadline; the next poll site converts the overrun
  // into kDeadlineExceeded. sim.pass1 is hit once per worker slice, so the
  // stall is bounded.
  RunContext ctx;
  ctx.set_deadline_after(std::chrono::milliseconds{10});
  LinkClusterer::Config config = make_config(1, PairMapKind::kHash, ClusterMode::kFine);
  config.ctx = &ctx;
  fault::arm("sim.pass1", fault::FaultKind::kSleep, 0, 50);
  const StatusOr<ClusterResult> run = LinkClusterer(config).run(test_graph());
  EXPECT_GE(fault::fire_count(), 1u);
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kDeadlineExceeded);
}

TEST_F(FaultInjectionTest, DisarmedRerunReproducesDendrogramExactly) {
  for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
    SCOPED_TRACE(testing::Message() << "threads=" << threads);
    const LinkClusterer clusterer(
        make_config(threads, PairMapKind::kHash, ClusterMode::kFine));
    const StatusOr<ClusterResult> before = clusterer.run(test_graph());
    ASSERT_TRUE(before.ok());
    const std::uint64_t reference = dendrogram_digest(before.value().dendrogram);

    fault::arm("sim.pass1", fault::FaultKind::kThrow);
    EXPECT_FALSE(clusterer.run(test_graph()).ok());
    fault::disarm();

    const StatusOr<ClusterResult> after = clusterer.run(test_graph());
    ASSERT_TRUE(after.ok());
    EXPECT_EQ(dendrogram_digest(after.value().dendrogram), reference);
  }
}

TEST_F(FaultInjectionTest, GatherFaultDisarmedRerunReproducesDendrogramExactly) {
  // A fault inside the gather pass-2 block unwinds the default build (serial
  // and through the pool), and a disarmed rerun reproduces the exact
  // dendrogram — the per-worker output blocks hold no state that survives
  // the unwound run.
  for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
    SCOPED_TRACE(testing::Message() << "threads=" << threads);
    const LinkClusterer clusterer(
        make_config(threads, PairMapKind::kHash, ClusterMode::kFine));
    const StatusOr<ClusterResult> before = clusterer.run(test_graph());
    ASSERT_TRUE(before.ok());
    const std::uint64_t reference = dendrogram_digest(before.value().dendrogram);

    fault::arm("build.gather", fault::FaultKind::kThrow);
    EXPECT_FALSE(clusterer.run(test_graph()).ok());
    fault::disarm();

    const StatusOr<ClusterResult> after = clusterer.run(test_graph());
    ASSERT_TRUE(after.ok());
    EXPECT_EQ(dendrogram_digest(after.value().dendrogram), reference);
  }
}

TEST_F(FaultInjectionTest, DisarmedRerunReproducesCoarseDendrogramExactly) {
  // Same round trip through the coarse mode: a CAS-union fault mid-chunk
  // unwinds through the shared concurrent DSU, and a fresh run afterwards
  // reproduces the exact coarse dendrogram at both thread counts.
  for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
    SCOPED_TRACE(testing::Message() << "threads=" << threads);
    const LinkClusterer clusterer(
        make_config(threads, PairMapKind::kHash, ClusterMode::kCoarse));
    const StatusOr<ClusterResult> before = clusterer.run(test_graph());
    ASSERT_TRUE(before.ok());
    const std::uint64_t reference = dendrogram_digest(before.value().dendrogram);

    fault::arm("coarse.cas_union", fault::FaultKind::kThrow, /*skip_hits=*/100);
    EXPECT_FALSE(clusterer.run(test_graph()).ok());
    fault::disarm();

    const StatusOr<ClusterResult> after = clusterer.run(test_graph());
    ASSERT_TRUE(after.ok());
    EXPECT_EQ(dendrogram_digest(after.value().dendrogram), reference);
  }
}

TEST_F(FaultInjectionTest, SkipHitsDelaysTheFault) {
  // With skip_hits = 3, the first three passes through sim.pass2.count
  // succeed and the fourth throws — proving mid-phase unwinding, not just
  // entry-point unwinding.
  fault::arm("sim.pass2.count", fault::FaultKind::kThrow, /*skip_hits=*/3);
  const StatusOr<ClusterResult> run =
      LinkClusterer(make_config(8, PairMapKind::kHash, ClusterMode::kFine,
                                BuildStrategy::kSharded))
          .run(test_graph());
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kInternal);
}

class SnapshotFaultTest : public FaultInjectionTest {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("lc_fault_snapshot_" +
            std::string(::testing::UnitTest::GetInstance()->current_test_info()->name()));
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    fault::disarm();
    std::filesystem::remove_all(dir_);
  }

  [[nodiscard]] LinkClusterer::Config checkpointing_config(
      std::uint64_t max_snapshots) const {
    LinkClusterer::Config config =
        make_config(1, PairMapKind::kHash, ClusterMode::kFine);
    config.checkpoint.directory = dir_.string();
    config.checkpoint.interval_ms = 0;
    config.checkpoint.max_snapshots = max_snapshots;
    return config;
  }

  std::filesystem::path dir_;
};

TEST_F(SnapshotFaultTest, FailedSnapshotWriteNeverFailsTheRun) {
  // A fault inside the snapshot write path is swallowed by the Checkpointer:
  // the run completes, produces the exact reference dendrogram, and simply
  // has no snapshot to show for it.
  const StatusOr<ClusterResult> reference =
      LinkClusterer(make_config(1, PairMapKind::kHash, ClusterMode::kFine))
          .run(test_graph());
  ASSERT_TRUE(reference.ok());

  fault::arm("snapshot.write", fault::FaultKind::kThrow);
  const StatusOr<ClusterResult> run =
      LinkClusterer(checkpointing_config(/*max_snapshots=*/4)).run(test_graph());
  EXPECT_GE(fault::fire_count(), 1u);
  fault::disarm();
  ASSERT_TRUE(run.ok()) << run.status().to_string();
  EXPECT_EQ(dendrogram_digest(run.value().dendrogram),
            dendrogram_digest(reference.value().dendrogram));
  EXPECT_FALSE(std::filesystem::exists(snapshot_path(dir_.string())));
}

TEST_F(SnapshotFaultTest, CrashBetweenRenamesLeavesLoadablePrev) {
  // Snapshot #1 commits normally. Snapshot #2 rotates the primary to .prev
  // and then "crashes" between the two renames — the torn window. The
  // primary is gone, but .prev holds snapshot #1 and resume still works.
  const StatusOr<ClusterResult> reference =
      LinkClusterer(make_config(1, PairMapKind::kHash, ClusterMode::kFine))
          .run(test_graph());
  ASSERT_TRUE(reference.ok());

  fault::arm("snapshot.rename", fault::FaultKind::kThrow, /*skip_hits=*/1);
  const StatusOr<ClusterResult> writer =
      LinkClusterer(checkpointing_config(/*max_snapshots=*/2)).run(test_graph());
  EXPECT_GE(fault::fire_count(), 1u);
  fault::disarm();
  ASSERT_TRUE(writer.ok()) << writer.status().to_string();

  const std::string primary = snapshot_path(dir_.string());
  EXPECT_FALSE(std::filesystem::exists(primary));
  ASSERT_TRUE(std::filesystem::exists(primary + ".prev"));

  LinkClusterer::Config resuming = checkpointing_config(/*max_snapshots=*/0);
  resuming.checkpoint.interval_ms = 3600000;
  resuming.resume = true;
  const StatusOr<ClusterResult> resumed = LinkClusterer(resuming).run(test_graph());
  ASSERT_TRUE(resumed.ok()) << resumed.status().to_string();
  EXPECT_EQ(dendrogram_digest(resumed.value().dendrogram),
            dendrogram_digest(reference.value().dendrogram));
}

TEST_F(SnapshotFaultTest, TransientWriteFaultIsHealedByRetry) {
  // The fault fires twice and then falls silent (max_fires) — exactly a
  // transient I/O glitch. Two retries with backoff recover the snapshot:
  // no failure is recorded, the file lands on disk, and the result is the
  // reference bit for bit.
  const StatusOr<ClusterResult> reference =
      LinkClusterer(make_config(1, PairMapKind::kHash, ClusterMode::kFine))
          .run(test_graph());
  ASSERT_TRUE(reference.ok());

  LinkClusterer::Config config = checkpointing_config(/*max_snapshots=*/1);
  config.checkpoint.write_retries = 2;
  config.checkpoint.backoff_initial_ms = 1;  // bounded: 1 + 2 ms of backoff
  config.checkpoint.backoff_max_ms = 8;
  fault::arm("snapshot.write", fault::FaultKind::kThrow, /*skip_hits=*/0,
             /*sleep_ms=*/0, /*max_fires=*/2);
  const StatusOr<ClusterResult> run = LinkClusterer(config).run(test_graph());
  EXPECT_EQ(fault::fire_count(), 2u);
  fault::disarm();

  ASSERT_TRUE(run.ok()) << run.status().to_string();
  ASSERT_TRUE(run.value().ckpt.has_value());
  EXPECT_EQ(run.value().ckpt->retries_used, 2u);
  EXPECT_EQ(run.value().ckpt->write_failures, 0u);
  EXPECT_FALSE(run.value().ckpt->degraded);
  EXPECT_GE(run.value().ckpt->snapshots_written, 1u);
  EXPECT_TRUE(std::filesystem::exists(snapshot_path(dir_.string())));
  EXPECT_EQ(dendrogram_digest(run.value().dendrogram),
            dendrogram_digest(reference.value().dendrogram));
}

TEST_F(SnapshotFaultTest, TransientRenameFaultIsHealedByRetry) {
  LinkClusterer::Config config = checkpointing_config(/*max_snapshots=*/1);
  config.checkpoint.write_retries = 1;
  config.checkpoint.backoff_initial_ms = 0;  // immediate retry
  fault::arm("snapshot.rename", fault::FaultKind::kThrow, /*skip_hits=*/0,
             /*sleep_ms=*/0, /*max_fires=*/1);
  const StatusOr<ClusterResult> run = LinkClusterer(config).run(test_graph());
  EXPECT_EQ(fault::fire_count(), 1u);
  fault::disarm();

  ASSERT_TRUE(run.ok()) << run.status().to_string();
  ASSERT_TRUE(run.value().ckpt.has_value());
  EXPECT_EQ(run.value().ckpt->retries_used, 1u);
  EXPECT_EQ(run.value().ckpt->write_failures, 0u);
  EXPECT_TRUE(std::filesystem::exists(snapshot_path(dir_.string())));
}

TEST_F(SnapshotFaultTest, ExhaustedRetriesDegradeButNeverFailTheRun) {
  // The fault never heals. One commit burns its retries and records the
  // failure; degrade_after=1 flips the checkpointer to in-memory-only, so
  // no further snapshot is attempted — and the run still returns the exact
  // reference dendrogram.
  const StatusOr<ClusterResult> reference =
      LinkClusterer(make_config(1, PairMapKind::kHash, ClusterMode::kFine))
          .run(test_graph());
  ASSERT_TRUE(reference.ok());

  LinkClusterer::Config config = checkpointing_config(/*max_snapshots=*/0);
  config.checkpoint.write_retries = 2;
  config.checkpoint.backoff_initial_ms = 0;
  config.checkpoint.degrade_after = 1;
  fault::arm("snapshot.write", fault::FaultKind::kThrow);
  const StatusOr<ClusterResult> run = LinkClusterer(config).run(test_graph());
  // 1 attempt + 2 retries, then the degraded checkpointer stops trying.
  EXPECT_EQ(fault::fire_count(), 3u);
  fault::disarm();

  ASSERT_TRUE(run.ok()) << run.status().to_string();
  ASSERT_TRUE(run.value().ckpt.has_value());
  EXPECT_EQ(run.value().ckpt->write_failures, 1u);
  EXPECT_EQ(run.value().ckpt->retries_used, 2u);
  EXPECT_TRUE(run.value().ckpt->degraded);
  EXPECT_EQ(run.value().ckpt->snapshots_written, 0u);
  EXPECT_EQ(dendrogram_digest(run.value().dendrogram),
            dendrogram_digest(reference.value().dendrogram));

  // Disarmed rerun from scratch: digest-identical, snapshots healthy again.
  // (Capped — an uncapped every-entry snapshot rerun is all disk time.)
  config.checkpoint.max_snapshots = 2;
  StatusOr<ClusterResult> rerun = LinkClusterer(config).run(test_graph());
  ASSERT_TRUE(rerun.ok());
  EXPECT_FALSE(rerun.value().ckpt->degraded);
  EXPECT_EQ(dendrogram_digest(rerun.value().dendrogram),
            dendrogram_digest(reference.value().dendrogram));
}

TEST_F(SnapshotFaultTest, LoadFaultSurfacesAsStatusOnResume) {
  ASSERT_TRUE(
      LinkClusterer(checkpointing_config(/*max_snapshots=*/1)).run(test_graph()).ok());

  LinkClusterer::Config resuming = checkpointing_config(/*max_snapshots=*/0);
  resuming.checkpoint.interval_ms = 3600000;
  resuming.resume = true;
  fault::arm("snapshot.load", fault::FaultKind::kThrow);
  const StatusOr<ClusterResult> resumed = LinkClusterer(resuming).run(test_graph());
  EXPECT_GE(fault::fire_count(), 1u);
  ASSERT_FALSE(resumed.ok());
  EXPECT_EQ(resumed.status().code(), StatusCode::kInternal);
}

TEST_F(FaultInjectionTest, MultiSitePlanFiresEachWindowInOrder) {
  // Two phase sites armed simultaneously, each with a one-fire window. The
  // first run dies in the similarity build, the second survives it (that
  // clause is spent) and dies at the sweep, the third finds every window
  // spent and completes with the reference dendrogram.
  const LinkClusterer clusterer(
      make_config(1, PairMapKind::kHash, ClusterMode::kFine));
  const StatusOr<ClusterResult> reference = clusterer.run(test_graph());
  ASSERT_TRUE(reference.ok());

  const StatusOr<fault::FaultPlan> plan =
      fault::parse_plan("build.gather:throw:max=1;sweep.entry:throw:max=1");
  ASSERT_TRUE(plan.ok()) << plan.status().to_string();
  ASSERT_TRUE(fault::arm_plan(*plan).ok());

  const StatusOr<ClusterResult> first = clusterer.run(test_graph());
  ASSERT_FALSE(first.ok());
  EXPECT_NE(first.status().message().find("build.gather"), std::string::npos)
      << first.status().to_string();

  const StatusOr<ClusterResult> second = clusterer.run(test_graph());
  ASSERT_FALSE(second.ok());
  EXPECT_NE(second.status().message().find("sweep.entry"), std::string::npos)
      << second.status().to_string();

  const StatusOr<ClusterResult> third = clusterer.run(test_graph());
  ASSERT_TRUE(third.ok()) << third.status().to_string();
  EXPECT_EQ(fault::fire_count(), 2u);
  EXPECT_EQ(dendrogram_digest(third.value().dendrogram),
            dendrogram_digest(reference.value().dendrogram));
}

class ServeFaultTest : public FaultInjectionTest {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("lc_fault_serve_" +
            std::string(::testing::UnitTest::GetInstance()->current_test_info()->name()));
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
    graph_path_ = (dir_ / "graph.edges").string();
    const graph::IoResult io = graph::write_edge_list(
        graph::erdos_renyi(80, 0.1, {13, graph::WeightPolicy::kUniform}),
        graph_path_);
    ASSERT_TRUE(io.ok) << io.error;
  }
  void TearDown() override {
    fault::disarm();
    std::filesystem::remove_all(dir_);
  }

  static std::string ask(serve::Server& server, const std::string& line) {
    std::string response;
    server.handle_line(line, &response);
    if (!response.empty() && response.back() == '\n') response.pop_back();
    return response;
  }

  std::filesystem::path dir_;
  std::string graph_path_;
};

TEST_F(ServeFaultTest, WorkerSpawnFaultIsContainedAndTheNextRunLaunches) {
  serve::Server server({});
  ASSERT_EQ(ask(server, "load path=" + graph_path_).substr(0, 2), "ok");

  fault::arm("serve.worker.spawn", fault::FaultKind::kThrow, /*skip_hits=*/0,
             /*sleep_ms=*/0, /*max_fires=*/1);
  const std::string refused = ask(server, "run");
  EXPECT_EQ(refused.rfind("err code=internal", 0), 0u) << refused;
  EXPECT_EQ(fault::fire_count(), 1u);

  // The supervisor is idle again (not wedged "running" with no thread), so
  // the next launch — with the one-fire window spent — goes through.
  const std::string launched = ask(server, "run");
  EXPECT_EQ(launched.rfind("ok run=", 0), 0u) << launched;
  EXPECT_NE(ask(server, "wait").find("state=done"), std::string::npos);
}

TEST_F(ServeFaultTest, ManifestWriteFaultNeverFailsTheRun) {
  // The manifest is recovery insurance; losing it must not lose the run.
  serve::ServerOptions options;
  options.checkpoint_dir = (dir_ / "ckpt").string();
  serve::Server server(options);
  ASSERT_EQ(ask(server, "load path=" + graph_path_).substr(0, 2), "ok");

  fault::arm("serve.manifest.write", fault::FaultKind::kThrow);
  ASSERT_EQ(ask(server, "run").substr(0, 2), "ok");
  EXPECT_NE(ask(server, "wait").find("state=done"), std::string::npos);
  EXPECT_GE(fault::fire_count(), 1u);
  EXPECT_FALSE(std::filesystem::exists(
      serve::RunSupervisor::manifest_path(options.checkpoint_dir)));
}

TEST_F(ServeFaultTest, AcceptFaultDropsOneClientNotTheListener) {
  StatusOr<int> listener = serve::listen_on(0);
  ASSERT_TRUE(listener.ok()) << listener.status().to_string();
  const int port = serve::listen_port(*listener);
  ASSERT_GT(port, 0);

  serve::Server server({});
  std::ostringstream log;
  fault::arm("serve.accept", fault::FaultKind::kThrow, /*skip_hits=*/0,
             /*sleep_ms=*/0, /*max_fires=*/1);
  std::thread loop(
      [&] { serve::serve_fds(server, *listener, /*use_stdin=*/false, log); });

  const auto connect_local = [port]() {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
    return fd;
  };
  const auto send_all = [](int fd, const std::string& data) {
    EXPECT_EQ(::send(fd, data.data(), data.size(), 0),
              static_cast<ssize_t>(data.size()));
  };
  const auto recv_line = [](int fd) {
    std::string line;
    char byte = 0;
    while (::recv(fd, &byte, 1, 0) == 1 && byte != '\n') line.push_back(byte);
    return line;
  };

  // The first client is the accept fault's victim: the server closes it
  // immediately (EOF on read) and logs the containment.
  const int victim = connect_local();
  send_all(victim, "ping\n");
  EXPECT_EQ(recv_line(victim), "");
  ::close(victim);

  // The listener survived; the next client is served normally.
  const int survivor = connect_local();
  send_all(survivor, "ping\n");
  EXPECT_EQ(recv_line(survivor), "ok pong=1");
  send_all(survivor, "shutdown\n");
  EXPECT_EQ(recv_line(survivor), "ok bye=1");
  loop.join();
  ::close(survivor);
  EXPECT_EQ(fault::fire_count(), 1u);
  EXPECT_NE(log.str().find("serve.accept"), std::string::npos) << log.str();
}

TEST_F(FaultInjectionTest, BaselineSitesThrow) {
  const graph::WeightedGraph& graph = test_graph();
  const SimilarityMap map = build_similarity_map(graph, {});
  const EdgeIndex index(graph.edge_count(), EdgeOrder::kNatural, 0);

  fault::arm("baseline.matrix", fault::FaultKind::kThrow);
  EXPECT_THROW(baseline::EdgeSimilarityMatrix::build(graph, map, index),
               std::runtime_error);
  fault::disarm();

  const auto matrix = baseline::EdgeSimilarityMatrix::build(graph, map, index);
  ASSERT_TRUE(matrix.has_value());
  fault::arm("baseline.nbm", fault::FaultKind::kThrow);
  EXPECT_THROW(baseline::nbm_cluster(*matrix), std::runtime_error);
}

}  // namespace
}  // namespace lc::core
