// End-to-end pipeline: synthetic corpus -> tokenizer/stemmer/stop words ->
// vocabulary -> association graph -> link clustering -> communities, checked
// for determinism and for actually recovering the corpus's planted topic
// structure (scored with NMI against the generator's topic assignment).
#include <gtest/gtest.h>

#include <unordered_map>

#include "core/link_clusterer.hpp"
#include "core/partition_density.hpp"
#include "eval/clustering_metrics.hpp"
#include "text/association.hpp"
#include "text/corpus.hpp"
#include "text/porter.hpp"
#include "text/tokenizer.hpp"
#include "util/rng.hpp"

namespace lc {
namespace {

struct Pipeline {
  text::AssociationGraph ag;
  core::ClusterResult result;
  core::DensityCut cut;
};

Pipeline run_pipeline(std::uint64_t seed, double alpha) {
  text::SyntheticCorpusOptions options;
  options.num_documents = 3000;
  options.vocab_size = 1200;
  options.num_topics = 8;
  options.seed = seed;
  options.global_mix = 0.3;  // topic-heavy corpus: clear community structure
  const text::Corpus corpus = text::generate_corpus(options);
  std::vector<text::TokenizedDocument> docs;
  docs.reserve(corpus.size());
  for (const std::string& doc : corpus.documents) docs.push_back(text::tokenize(doc));
  const text::Vocabulary vocab = text::Vocabulary::build(docs);

  Pipeline p;
  p.ag = text::build_association_graph(docs, vocab, alpha);
  p.result = core::LinkClusterer().cluster(p.ag.graph);
  p.cut = core::best_partition_density_cut(p.ag.graph, p.result.edge_index,
                                           p.result.dendrogram);
  return p;
}

TEST(Pipeline, DeterministicEndToEnd) {
  const Pipeline a = run_pipeline(31, 0.2);
  const Pipeline b = run_pipeline(31, 0.2);
  EXPECT_EQ(a.ag.graph.edge_count(), b.ag.graph.edge_count());
  EXPECT_EQ(a.result.final_labels, b.result.final_labels);
  EXPECT_EQ(a.cut.event_count, b.cut.event_count);
  EXPECT_DOUBLE_EQ(a.cut.density, b.cut.density);
}

TEST(Pipeline, ProducesNonTrivialCommunities) {
  const Pipeline p = run_pipeline(32, 0.2);
  ASSERT_GT(p.ag.graph.edge_count(), 50u);
  const eval::OverlapStats overlap =
      eval::overlap_stats(p.ag.graph, p.result.edge_index, p.cut.labels);
  EXPECT_GT(overlap.communities, 1u);
  EXPECT_LT(overlap.communities, p.ag.graph.edge_count());
  EXPECT_GT(p.cut.density, 0.0);
}

TEST(Pipeline, RecoversPlantedTopicsBetterThanChance) {
  // Ground truth: the generator assigns word index i to topic i % num_topics.
  // Derive a vertex labeling from the edge communities (majority community
  // per vertex) and compare its NMI against a random labeling's.
  const std::size_t num_topics = 8;
  const Pipeline p = run_pipeline(33, 0.2);
  ASSERT_GT(p.ag.graph.vertex_count(), 40u);

  // Vertex -> largest incident edge community.
  std::vector<std::uint32_t> predicted(p.ag.graph.vertex_count(), 0);
  {
    std::unordered_map<graph::VertexId, std::unordered_map<core::EdgeIdx, std::size_t>> votes;
    for (std::size_t idx = 0; idx < p.cut.labels.size(); ++idx) {
      const graph::Edge& e = p.ag.graph.edge(
          p.result.edge_index.edge_at(static_cast<core::EdgeIdx>(idx)));
      ++votes[e.u][p.cut.labels[idx]];
      ++votes[e.v][p.cut.labels[idx]];
    }
    for (const auto& [vertex, counts] : votes) {
      std::size_t best = 0;
      for (const auto& [label, count] : counts) {
        if (count > best) {
          best = count;
          predicted[vertex] = label;
        }
      }
    }
  }

  // Ground-truth topic per vertex, recovered from the pseudo-word identity.
  std::vector<std::uint32_t> truth(p.ag.graph.vertex_count(), 0);
  {
    std::unordered_map<std::string, std::uint32_t> topic_of;
    for (std::size_t i = 0; i < 1200; ++i) {
      // The tokenizer stems words, so map the *stemmed* form.
      topic_of[text::porter_stem(text::synthetic_word(i))] =
          static_cast<std::uint32_t>(i % num_topics);
    }
    for (std::size_t v = 0; v < p.ag.words.size(); ++v) {
      const auto it = topic_of.find(p.ag.words[v]);
      ASSERT_NE(it, topic_of.end()) << p.ag.words[v];
      truth[v] = it->second;
    }
  }

  const double nmi = eval::normalized_mutual_information(predicted, truth);
  // Random baseline for calibration.
  Rng rng(99);
  std::vector<std::uint32_t> random_labels(truth.size());
  for (auto& label : random_labels) {
    label = static_cast<std::uint32_t>(rng.next_below(num_topics));
  }
  const double random_nmi = eval::normalized_mutual_information(random_labels, truth);
  EXPECT_GT(nmi, random_nmi + 0.1)
      << "recovered NMI " << nmi << " vs random " << random_nmi;
}

TEST(Pipeline, CoarseModeAgreesWithFineOnCommunityScale) {
  // Coarse clustering with phi = fine's best-cut cluster count should land in
  // the same order of magnitude of communities (identical results are not
  // expected: levels are coarser).
  const Pipeline fine = run_pipeline(34, 0.15);
  const std::set<core::EdgeIdx> fine_clusters(fine.cut.labels.begin(),
                                              fine.cut.labels.end());
  core::LinkClusterer::Config config;
  config.mode = core::ClusterMode::kCoarse;
  config.coarse.phi = std::max<std::size_t>(2, fine_clusters.size());
  const core::ClusterResult coarse = core::LinkClusterer(config).cluster(fine.ag.graph);
  ASSERT_TRUE(coarse.coarse.has_value());
  const std::set<core::EdgeIdx> coarse_clusters(coarse.final_labels.begin(),
                                                coarse.final_labels.end());
  EXPECT_GT(coarse_clusters.size(), 0u);
  EXPECT_LE(coarse_clusters.size(), fine.ag.graph.edge_count());
}

}  // namespace
}  // namespace lc
