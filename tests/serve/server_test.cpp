// The supervised server end to end: containment, degradation, busy
// signalling, dendrogram queries, manifest round-trip, and in-process
// autorecovery (serve/server.hpp, serve/run_supervisor.hpp).
#include "serve/server.hpp"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <memory>
#include <sstream>
#include <string>
#include <thread>

#include "core/dendrogram_io.hpp"
#include "core/link_clusterer.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "serve/run_supervisor.hpp"
#include "serve/signals.hpp"

namespace lc::serve {
namespace {

namespace fs = std::filesystem;

graph::WeightedGraph small_graph() {
  return graph::erdos_renyi(120, 0.08, {11, graph::WeightPolicy::kUniform});
}

/// Big enough that the unpruned gather build charges well past a 2 MiB
/// budget while the min_score-degraded rerun fits under it.
graph::WeightedGraph budget_tripping_graph() {
  return graph::erdos_renyi(3000, 0.01, {7, graph::WeightPolicy::kUniform});
}

class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("lc_serve_" +
            std::string(::testing::UnitTest::GetInstance()->current_test_info()->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  /// Writes `graph` as an edge list inside the test directory.
  std::string write_graph(const graph::WeightedGraph& graph,
                          const std::string& name = "graph.edges") {
    const std::string path = (dir_ / name).string();
    const graph::IoResult io = graph::write_edge_list(graph, path);
    EXPECT_TRUE(io.ok) << io.error;
    return path;
  }

  /// One request line in, one response line out (stripped of the newline).
  static std::string ask(Server& server, const std::string& line) {
    std::string response;
    server.handle_line(line, &response);
    if (!response.empty() && response.back() == '\n') response.pop_back();
    return response;
  }

  fs::path dir_;
};

TEST_F(ServerTest, PingAndUnknownCommand) {
  Server server({});
  EXPECT_EQ(ask(server, "ping"), "ok pong=1");
  const std::string unknown = ask(server, "frobnicate x=1");
  EXPECT_EQ(unknown.rfind("err code=invalid_argument", 0), 0u) << unknown;
  EXPECT_EQ(ask(server, ""), "");
  EXPECT_EQ(ask(server, "# comment"), "");
}

TEST_F(ServerTest, LoadFailureIsContained) {
  Server server({});
  const std::string bad = ask(server, "load path=/nonexistent/graph.edges");
  EXPECT_EQ(bad.rfind("err ", 0), 0u) << bad;
  EXPECT_FALSE(server.graph_loaded());
  // The server still serves: a real load succeeds afterwards.
  const std::string path = write_graph(small_graph());
  const std::string good = ask(server, "load path=" + path);
  EXPECT_EQ(good.rfind("ok vertices=120 ", 0), 0u) << good;
  EXPECT_TRUE(server.graph_loaded());
}

TEST_F(ServerTest, RunWithoutGraphIsAnError) {
  Server server({});
  EXPECT_EQ(ask(server, "run").rfind("err ", 0), 0u);
}

TEST_F(ServerTest, RunWaitCutMemberRoundTrip) {
  Server server({});
  const std::string path = write_graph(small_graph());
  ASSERT_EQ(ask(server, "load path=" + path).rfind("ok ", 0), 0u);
  ASSERT_EQ(ask(server, "run mode=fine threads=2").rfind("ok run=1 ", 0), 0u);
  const std::string done = ask(server, "wait");
  EXPECT_NE(done.find("state=done"), std::string::npos) << done;
  EXPECT_NE(done.find("attempts=1"), std::string::npos) << done;

  // The supervised result is bitwise the direct library result.
  core::LinkClusterer::Config config;
  config.threads = 2;
  StatusOr<core::ClusterResult> direct =
      core::LinkClusterer(config).run(small_graph());
  ASSERT_TRUE(direct.ok());
  const std::shared_ptr<const core::ClusterResult> served =
      server.supervisor().result();
  ASSERT_NE(served, nullptr);
  EXPECT_EQ(core::to_merge_list(served->dendrogram),
            core::to_merge_list(direct->dendrogram));

  // cut k=N: clusters(after leaves - N events) == N when N is reachable.
  const std::string cut = ask(server, "cut k=7");
  EXPECT_EQ(cut.rfind("ok clusters=7 ", 0), 0u) << cut;
  // cut with a label dump.
  const std::string out_path = (dir_ / "labels.txt").string();
  const std::string dumped = ask(server, "cut k=7 out=" + out_path);
  EXPECT_NE(dumped.find("out=" + out_path), std::string::npos) << dumped;
  std::ifstream labels(out_path);
  std::size_t lines = 0;
  for (std::string line; std::getline(labels, line);) ++lines;
  EXPECT_EQ(lines, served->final_labels.size());

  // member agrees with the result's label array through the edge index.
  const std::string member = ask(server, "member edge=3");
  const core::EdgeIdx position = served->edge_index.index_of(3);
  EXPECT_EQ(member, "ok edge=3 label=" +
                        std::to_string(served->final_labels[position]));
  // Out-of-range edge is an input error, not a crash.
  EXPECT_EQ(ask(server, "member edge=999999").rfind("err ", 0), 0u);
}

TEST_F(ServerTest, CutWithoutRunIsAnError) {
  Server server({});
  EXPECT_EQ(ask(server, "cut k=3").rfind("err ", 0), 0u);
  EXPECT_EQ(ask(server, "member edge=0").rfind("err ", 0), 0u);
}

TEST_F(ServerTest, DeadlineTripIsContainedAndReported) {
  Server server({});
  const std::string path = write_graph(small_graph());
  ASSERT_EQ(ask(server, "load path=" + path).rfind("ok ", 0), 0u);
  ASSERT_EQ(ask(server, "run deadline_ms=0").rfind("ok run=1 ", 0), 0u);
  const std::string failed = ask(server, "wait");
  EXPECT_NE(failed.find("state=failed"), std::string::npos) << failed;
  EXPECT_NE(failed.find("code=deadline_exceeded"), std::string::npos) << failed;
  EXPECT_NE(failed.find("class=resource"), std::string::npos) << failed;
  EXPECT_NE(failed.find("retryable=0"), std::string::npos) << failed;

  // Containment: the next run on the same server succeeds.
  ASSERT_EQ(ask(server, "run").rfind("ok run=2 ", 0), 0u);
  EXPECT_NE(ask(server, "wait").find("state=done"), std::string::npos);
  const std::string health = ask(server, "health");
  EXPECT_NE(health.find("runs_total=2"), std::string::npos) << health;
  EXPECT_NE(health.find("runs_failed=1"), std::string::npos) << health;
}

TEST_F(ServerTest, MemoryTripWithoutDegradeFails) {
  Server server({});
  const std::string path = write_graph(budget_tripping_graph());
  ASSERT_EQ(ask(server, "load path=" + path).rfind("ok ", 0), 0u);
  ASSERT_EQ(ask(server, "run max_memory_mb=2").rfind("ok run=1 ", 0), 0u);
  const std::string failed = ask(server, "wait");
  EXPECT_NE(failed.find("state=failed"), std::string::npos) << failed;
  EXPECT_NE(failed.find("code=resource_exhausted"), std::string::npos) << failed;
}

TEST_F(ServerTest, MemoryTripWithDegradeWalksTheLadder) {
  ServerOptions options;
  options.degrade_on_oom = true;
  Server server(options);
  const std::string path = write_graph(budget_tripping_graph());
  ASSERT_EQ(ask(server, "load path=" + path).rfind("ok ", 0), 0u);
  ASSERT_EQ(ask(server, "run max_memory_mb=2").rfind("ok run=1 ", 0), 0u);
  const std::string report = ask(server, "wait");
  EXPECT_NE(report.find("state=degraded"), std::string::npos) << report;
  EXPECT_NE(report.find("degrade_action="), std::string::npos) << report;
  const RunReport final_report = server.supervisor().report();
  EXPECT_EQ(final_report.state, RunState::kDegraded);
  EXPECT_GE(final_report.attempts, 2u);
}

TEST_F(ServerTest, BusyServerAnswersUnavailable) {
  Server server({});
  const std::string path = write_graph(budget_tripping_graph());
  ASSERT_EQ(ask(server, "load path=" + path).rfind("ok ", 0), 0u);
  ASSERT_EQ(ask(server, "run threads=1").rfind("ok run=1 ", 0), 0u);
  // The second submission races the first run's completion; either it lost
  // the race (run done, new run accepted) or it was refused as busy with the
  // retryable unavailable taxonomy. Both keep the server consistent.
  const std::string second = ask(server, "run threads=1");
  if (second.rfind("err ", 0) == 0) {
    EXPECT_NE(second.find("code=unavailable"), std::string::npos) << second;
    EXPECT_NE(second.find("retryable=1"), std::string::npos) << second;
  } else {
    EXPECT_EQ(second.rfind("ok run=2 ", 0), 0u) << second;
  }
  ask(server, "wait");
}

TEST_F(ServerTest, CancelThenServeAgain) {
  Server server({});
  const std::string path = write_graph(budget_tripping_graph());
  ASSERT_EQ(ask(server, "load path=" + path).rfind("ok ", 0), 0u);
  ASSERT_EQ(ask(server, "run").rfind("ok run=1 ", 0), 0u);
  ask(server, "cancel");
  const std::string report = ask(server, "wait");
  // The cancel races completion: cancelled when it landed in time, done
  // otherwise. Either way the server accepts the next run.
  EXPECT_TRUE(report.find("state=cancelled") != std::string::npos ||
              report.find("state=done") != std::string::npos)
      << report;
  ASSERT_EQ(ask(server, "run deadline_ms=10000").rfind("ok run=2 ", 0), 0u);
  EXPECT_NE(ask(server, "wait").find("state=done"), std::string::npos);
}

TEST_F(ServerTest, ShutdownDrainsAndStopsTheSession) {
  Server server({});
  std::istringstream in("ping\nshutdown\nping\n");
  std::ostringstream out;
  server.serve(in, out);
  // The post-shutdown ping is never answered: serve() returned.
  EXPECT_EQ(out.str(), "ok pong=1\nok bye=1\n");
}

TEST(SignalsTest, StopSignalLatchesAndTheWatcherFires) {
  install_stop_handlers();
  reset_stop_signal();
  ASSERT_EQ(stop_signal(), 0);

  std::atomic<int> seen{0};
  SignalWatcher watcher([&seen](int signo) { seen.store(signo); },
                        std::chrono::milliseconds(2));
  ::raise(SIGTERM);
  for (int i = 0; i < 500 && !watcher.fired(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_TRUE(watcher.fired());
  EXPECT_EQ(seen.load(), SIGTERM);
  EXPECT_EQ(stop_signal(), SIGTERM);

  // A second raise() must not re-latch a fresh signal number: the flag is
  // one-shot until reset (SA_RESETHAND means the *third* would kill us; the
  // handler re-arms only via install_stop_handlers()).
  reset_stop_signal();
  install_stop_handlers();
  EXPECT_EQ(stop_signal(), 0);
}

TEST(RunSupervisorTest, LaunchWithoutGraphIsInvalid) {
  RunSupervisor supervisor;
  EXPECT_EQ(supervisor.launch(RunSpec{}).code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(supervisor.running());
  EXPECT_TRUE(supervisor.wait(5));
  EXPECT_EQ(supervisor.result(), nullptr);
  EXPECT_EQ(supervisor.report().state, RunState::kIdle);
}

TEST(RunSupervisorTest, StateNames) {
  EXPECT_STREQ(run_state_name(RunState::kIdle), "idle");
  EXPECT_STREQ(run_state_name(RunState::kRunning), "running");
  EXPECT_STREQ(run_state_name(RunState::kDone), "done");
  EXPECT_STREQ(run_state_name(RunState::kDegraded), "degraded");
  EXPECT_STREQ(run_state_name(RunState::kCancelled), "cancelled");
  EXPECT_STREQ(run_state_name(RunState::kFailed), "failed");
}

TEST_F(ServerTest, ManifestRoundTripsExactly) {
  const graph::WeightedGraph graph = small_graph();
  core::LinkClusterer::Config config;
  config.mode = core::ClusterMode::kCoarse;
  config.min_similarity = 0.375;
  config.coarse.gamma = 2.5;
  config.seed = 1234;
  RunManifest manifest;
  manifest.fingerprint = core::LinkClusterer::fingerprint(graph, config);
  manifest.threads = 6;
  manifest.graph_path = "/data/my graph.edges";
  manifest.merges_path = (dir_ / "merges.txt").string();
  const std::string path = RunSupervisor::manifest_path(dir_.string());
  ASSERT_TRUE(manifest.write(path).ok());

  StatusOr<RunManifest> read = RunManifest::read(path);
  ASSERT_TRUE(read.ok()) << read.status().to_string();
  EXPECT_EQ(read->threads, 6u);
  EXPECT_EQ(read->graph_path, manifest.graph_path);
  EXPECT_EQ(read->merges_path, manifest.merges_path);
  const core::RunFingerprint& got = read->fingerprint;
  const core::RunFingerprint& want = manifest.fingerprint;
  EXPECT_EQ(got.graph_digest, want.graph_digest);
  EXPECT_EQ(got.mode, want.mode);
  EXPECT_EQ(got.seed, want.seed);
  // Doubles travel as bit patterns: exact equality, including the -inf
  // default when min_similarity is armed elsewhere.
  EXPECT_EQ(got.min_similarity, want.min_similarity);
  EXPECT_EQ(got.gamma, want.gamma);
  EXPECT_EQ(got.eta0, want.eta0);
}

TEST_F(ServerTest, ManifestReadRejectsGarbage) {
  const std::string path = (dir_ / "run.manifest").string();
  std::ofstream(path) << "not a manifest\n";
  EXPECT_FALSE(RunManifest::read(path).ok());
  EXPECT_FALSE(RunManifest::read((dir_ / "absent").string()).ok());
}

TEST_F(ServerTest, AutorecoveryReRunsAnInterruptedRun) {
  const std::string graph_path = write_graph(small_graph());
  const std::string merges_path = (dir_ / "merges.txt").string();

  // A crashed server's leftovers: the manifest alone (it died before the
  // first snapshot committed). Recovery must re-run from scratch.
  core::LinkClusterer::Config config;
  RunManifest manifest;
  manifest.fingerprint = core::LinkClusterer::fingerprint(small_graph(), config);
  manifest.threads = 2;
  manifest.graph_path = graph_path;
  manifest.merges_path = merges_path;
  ASSERT_TRUE(manifest.write(RunSupervisor::manifest_path(dir_.string())).ok());

  ServerOptions options;
  options.checkpoint_dir = dir_.string();
  Server server(options);
  ASSERT_TRUE(server.autorecover().ok());
  const std::string report = ServerTest::ask(server, "wait");
  EXPECT_NE(report.find("state=done"), std::string::npos) << report;
  EXPECT_NE(ServerTest::ask(server, "health").find("recovered=1"),
            std::string::npos);

  // The recovered run produced the exact merge list the original would have.
  config.threads = 2;
  StatusOr<core::ClusterResult> direct =
      core::LinkClusterer(config).run(small_graph());
  ASSERT_TRUE(direct.ok());
  std::ifstream merges(merges_path);
  std::stringstream written;
  written << merges.rdbuf();
  EXPECT_EQ(written.str(), core::to_merge_list(direct->dendrogram));

  // Success removed the manifest: a restart has nothing left to recover.
  EXPECT_FALSE(fs::exists(RunSupervisor::manifest_path(dir_.string())));
  Server second(options);
  ASSERT_TRUE(second.autorecover().ok());
  EXPECT_EQ(second.supervisor().report().state, RunState::kIdle);
}

TEST_F(ServerTest, AutorecoveryResumesFromAValidSnapshot) {
  const std::string graph_path = write_graph(small_graph());
  const std::string merges_path = (dir_ / "merges.txt").string();

  // Produce a genuine snapshot: a full run with snapshots at every chunk.
  core::LinkClusterer::Config config;
  config.checkpoint.directory = dir_.string();
  config.checkpoint.interval_ms = 0;
  StatusOr<core::ClusterResult> seeded =
      core::LinkClusterer(config).run(small_graph());
  ASSERT_TRUE(seeded.ok());
  ASSERT_TRUE(fs::exists(core::snapshot_path(dir_.string())));

  // Pretend the server died after that snapshot: manifest + snapshot left.
  RunManifest manifest;
  manifest.fingerprint = core::LinkClusterer::fingerprint(small_graph(), config);
  manifest.threads = 1;
  manifest.graph_path = graph_path;
  manifest.merges_path = merges_path;
  ASSERT_TRUE(manifest.write(RunSupervisor::manifest_path(dir_.string())).ok());

  ServerOptions options;
  options.checkpoint_dir = dir_.string();
  Server server(options);
  ASSERT_TRUE(server.autorecover().ok());
  EXPECT_NE(ServerTest::ask(server, "wait").find("state=done"), std::string::npos);

  // Byte-identical to the uninterrupted run.
  std::ifstream merges(merges_path);
  std::stringstream written;
  written << merges.rdbuf();
  EXPECT_EQ(written.str(), core::to_merge_list(seeded->dendrogram));
}

TEST_F(ServerTest, ManifestLandsInACheckpointDirThatDoesNotExistYet) {
  // The manifest write precedes the checkpointer's first snapshot — the
  // only other thing that creates the directory — so the supervisor must
  // create it itself or a crash before snapshot one leaves no recovery
  // state at all.
  const std::string graph_path = write_graph(small_graph());
  const fs::path nested = dir_ / "state" / "ckpt";
  ServerOptions options;
  options.checkpoint_dir = nested.string();
  Server server(options);
  ASSERT_EQ(ask(server, "load path=" + graph_path).substr(0, 2), "ok");
  ask(server, "run deadline_ms=0");
  EXPECT_NE(ask(server, "wait").find("state=failed"), std::string::npos);
  // A resource-tripped run stays retryable after a restart: its manifest
  // survives, in a directory that did not exist before the run.
  EXPECT_TRUE(fs::exists(RunSupervisor::manifest_path(nested.string())));
}

TEST_F(ServerTest, AutorecoveryRefusesAMismatchedGraph) {
  // The manifest names a graph whose digest no longer matches its content.
  const std::string graph_path = write_graph(small_graph());
  core::LinkClusterer::Config config;
  RunManifest manifest;
  manifest.fingerprint =
      core::LinkClusterer::fingerprint(budget_tripping_graph(), config);
  manifest.threads = 1;
  manifest.graph_path = graph_path;
  ASSERT_TRUE(manifest.write(RunSupervisor::manifest_path(dir_.string())).ok());

  ServerOptions options;
  options.checkpoint_dir = dir_.string();
  Server server(options);
  const Status refused = server.autorecover();
  EXPECT_EQ(refused.code(), StatusCode::kInvalidArgument);
  // Refusal is not a crash: the server still serves fresh requests.
  EXPECT_EQ(ServerTest::ask(server, "ping"), "ok pong=1");
}

TEST_F(ServerTest, AutorecoveryRefusesDoubleCorruption) {
  const std::string graph_path = write_graph(small_graph());
  const std::string merges_path = (dir_ / "merges.txt").string();

  // Seed real snapshots (interval 0 writes one per boundary, so both the
  // primary and the rotated ".prev" exist), then leave a manifest behind.
  core::LinkClusterer::Config config;
  config.checkpoint.directory = dir_.string();
  config.checkpoint.interval_ms = 0;
  ASSERT_TRUE(core::LinkClusterer(config).run(small_graph()).ok());
  const std::string snapshot = core::snapshot_path(dir_.string());
  ASSERT_TRUE(fs::exists(snapshot));
  ASSERT_TRUE(fs::exists(snapshot + ".prev"));

  RunManifest manifest;
  manifest.fingerprint = core::LinkClusterer::fingerprint(small_graph(), config);
  manifest.graph_path = graph_path;
  manifest.merges_path = merges_path;
  ASSERT_TRUE(manifest.write(RunSupervisor::manifest_path(dir_.string())).ok());

  // Flip one byte in BOTH files: no loadable state is left, and silently
  // re-running from scratch would hide real storage rot.
  for (const std::string& path : {snapshot, snapshot + ".prev"}) {
    std::string bytes;
    {
      std::ifstream in(path, std::ios::binary);
      bytes.assign(std::istreambuf_iterator<char>(in),
                   std::istreambuf_iterator<char>());
    }
    ASSERT_GT(bytes.size(), 0u);
    bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0xFF);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  ServerOptions options;
  options.checkpoint_dir = dir_.string();
  Server server(options);
  const Status refused = server.autorecover();
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(status_error_class(refused.code()), ErrorClass::kResource);
  EXPECT_TRUE(server.checkpoint_corrupt());

  // Refusal is a health signal, not a crash: the server keeps serving and
  // reports the corruption; the manifest survives for a later repair.
  EXPECT_EQ(ask(server, "ping"), "ok pong=1");
  const std::string health = ask(server, "health");
  EXPECT_NE(health.find("checkpoint_corrupt=1"), std::string::npos) << health;
  EXPECT_NE(health.find("recovered=0"), std::string::npos) << health;
  EXPECT_TRUE(fs::exists(RunSupervisor::manifest_path(dir_.string())));
}

/// Blocking localhost connect to `port`; returns the socket fd.
int connect_local(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0)
      << "connect: " << errno;
  return fd;
}

void send_all(int fd, const std::string& data) {
  std::size_t offset = 0;
  while (offset < data.size()) {
    const ssize_t n = ::send(fd, data.data() + offset, data.size() - offset, 0);
    ASSERT_GT(n, 0) << "send: " << errno;
    offset += static_cast<std::size_t>(n);
  }
}

/// Reads one '\n'-terminated response line (newline stripped).
std::string recv_line(int fd) {
  std::string line;
  char byte = 0;
  while (::recv(fd, &byte, 1, 0) == 1) {
    if (byte == '\n') return line;
    line.push_back(byte);
  }
  return line;  // peer closed
}

TEST(ServeTcpTest, OversizedLineGetsAnErrorAndTheConnectionSurvives) {
  StatusOr<int> listener = listen_on(0);
  ASSERT_TRUE(listener.ok()) << listener.status().to_string();
  const int port = listen_port(*listener);
  ASSERT_GT(port, 0);

  Server server({});
  std::ostringstream log;
  std::thread loop([&] { serve_fds(server, *listener, /*use_stdin=*/false, log); });

  const int client = connect_local(port);
  // 80 KiB of garbage in one request line: past the 64 KiB cap.
  send_all(client, std::string(80 * 1024, 'a') + "\n");
  const std::string rejected = recv_line(client);
  EXPECT_EQ(rejected.rfind("err code=invalid_argument", 0), 0u) << rejected;
  EXPECT_NE(rejected.find("exceeds"), std::string::npos) << rejected;
  // Same connection, next request: the server only dropped the line.
  send_all(client, "ping\n");
  EXPECT_EQ(recv_line(client), "ok pong=1");
  send_all(client, "shutdown\n");
  EXPECT_EQ(recv_line(client), "ok bye=1");
  loop.join();
  ::close(client);
}

TEST(ServeTcpTest, ClientVanishingMidCommandDoesNotKillTheLoop) {
  StatusOr<int> listener = listen_on(0);
  ASSERT_TRUE(listener.ok()) << listener.status().to_string();
  const int port = listen_port(*listener);
  ASSERT_GT(port, 0);

  Server server({});
  std::ostringstream log;
  std::thread loop([&] { serve_fds(server, *listener, /*use_stdin=*/false, log); });

  // First client dies mid-command: bytes sent, no newline, then gone.
  const int rude = connect_local(port);
  send_all(rude, "pin");
  ::close(rude);

  // The accept loop must still be alive for the next client.
  const int polite = connect_local(port);
  send_all(polite, "ping\n");
  EXPECT_EQ(recv_line(polite), "ok pong=1");
  send_all(polite, "shutdown\n");
  EXPECT_EQ(recv_line(polite), "ok bye=1");
  loop.join();
  ::close(polite);
}

TEST_F(ServerTest, AutorecoveryDisabledLeavesTheManifestAlone) {
  const std::string graph_path = write_graph(small_graph());
  core::LinkClusterer::Config config;
  RunManifest manifest;
  manifest.fingerprint = core::LinkClusterer::fingerprint(small_graph(), config);
  manifest.graph_path = graph_path;
  ASSERT_TRUE(manifest.write(RunSupervisor::manifest_path(dir_.string())).ok());

  ServerOptions options;
  options.checkpoint_dir = dir_.string();
  options.autorecover = false;
  Server server(options);
  ASSERT_TRUE(server.autorecover().ok());
  EXPECT_EQ(server.supervisor().report().state, RunState::kIdle);
  EXPECT_TRUE(fs::exists(RunSupervisor::manifest_path(dir_.string())));
}

}  // namespace
}  // namespace lc::serve
