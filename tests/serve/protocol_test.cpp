// Line-protocol parsing and formatting (serve/protocol.hpp).
#include "serve/protocol.hpp"

#include <string>

#include <gtest/gtest.h>

namespace lc::serve {
namespace {

TEST(ParseRequest, CommandAndArgs) {
  StatusOr<Request> parsed = parse_request("run mode=coarse threads=4");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->command, "run");
  EXPECT_EQ(parsed->get("mode"), "coarse");
  EXPECT_EQ(parsed->get("threads"), "4");
  EXPECT_FALSE(parsed->has("seed"));
  EXPECT_EQ(parsed->get("seed", "42"), "42");
}

TEST(ParseRequest, CommandIsLowercased) {
  StatusOr<Request> parsed = parse_request("PING");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->command, "ping");
}

TEST(ParseRequest, BlankAndCommentLinesAreEmptyOk) {
  for (const char* line : {"", "   ", "# a comment", "  # indented comment"}) {
    StatusOr<Request> parsed = parse_request(line);
    ASSERT_TRUE(parsed.ok()) << "line: '" << line << "'";
    EXPECT_TRUE(parsed->command.empty()) << "line: '" << line << "'";
  }
}

TEST(ParseRequest, QuotedValuesWithEscapes) {
  StatusOr<Request> parsed =
      parse_request(R"(load path="/tmp/my graph.edges" note="a \"b\" \\c")");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->get("path"), "/tmp/my graph.edges");
  EXPECT_EQ(parsed->get("note"), "a \"b\" \\c");
}

TEST(ParseRequest, LastDuplicateKeyWins) {
  StatusOr<Request> parsed = parse_request("run threads=1 threads=8");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->get("threads"), "8");
}

TEST(ParseRequest, BareTokenAfterCommandIsAnError) {
  EXPECT_FALSE(parse_request("run fast").ok());
  EXPECT_EQ(parse_request("run fast").status().code(), StatusCode::kInvalidArgument);
}

TEST(ParseRequest, UnterminatedQuoteIsAnError) {
  EXPECT_FALSE(parse_request("load path=\"unfinished").ok());
}

TEST(ParseRequest, EmptyKeyIsAnError) {
  EXPECT_FALSE(parse_request("run =value").ok());
}

TEST(QuoteValue, PlainTokensPassThrough) {
  EXPECT_EQ(quote_value("fine"), "fine");
  EXPECT_EQ(quote_value("/tmp/graph.edges"), "/tmp/graph.edges");
}

TEST(QuoteValue, QuotesWhenNeeded) {
  EXPECT_EQ(quote_value(""), "\"\"");
  EXPECT_EQ(quote_value("two words"), "\"two words\"");
  EXPECT_EQ(quote_value("a\"b"), "\"a\\\"b\"");
  EXPECT_EQ(quote_value("a\\b"), "\"a\\\\b\"");
}

TEST(QuoteValue, RoundTripsThroughTheParser) {
  const std::string nasty = "spaces \"quotes\" and \\backslashes\\";
  StatusOr<Request> parsed = parse_request("x v=" + quote_value(nasty));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->get("v"), nasty);
}

TEST(StatusCodeToken, SingleTokenPerCode) {
  EXPECT_STREQ(status_code_token(StatusCode::kCancelled), "cancelled");
  EXPECT_STREQ(status_code_token(StatusCode::kDeadlineExceeded), "deadline_exceeded");
  EXPECT_STREQ(status_code_token(StatusCode::kResourceExhausted), "resource_exhausted");
  EXPECT_STREQ(status_code_token(StatusCode::kInvalidArgument), "invalid_argument");
  EXPECT_STREQ(status_code_token(StatusCode::kUnavailable), "unavailable");
  EXPECT_STREQ(status_code_token(StatusCode::kInternal), "internal");
}

TEST(FormatError, CarriesTheFullTaxonomy) {
  const std::string line = format_error(Status::deadline_exceeded("deadline passed"));
  EXPECT_EQ(line,
            "err code=deadline_exceeded class=resource retryable=0 "
            "msg=\"deadline passed\"");
  const std::string busy = format_error(Status::unavailable("busy"));
  EXPECT_EQ(busy, "err code=unavailable class=transient retryable=1 msg=busy");
}

}  // namespace
}  // namespace lc::serve
