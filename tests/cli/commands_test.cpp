#include "cli/commands.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace lc::cli {
namespace {

int run(std::initializer_list<const char*> args, std::string* out_text = nullptr,
        std::string* err_text = nullptr) {
  std::vector<const char*> argv{"linkcluster"};
  argv.insert(argv.end(), args.begin(), args.end());
  std::ostringstream out;
  std::ostringstream err;
  const int code = run_command(static_cast<int>(argv.size()), argv.data(), out, err);
  if (out_text != nullptr) *out_text = out.str();
  if (err_text != nullptr) *err_text = err.str();
  return code;
}

std::string temp_path(const std::string& name) { return testing::TempDir() + "/" + name; }

TEST(Cli, NoArgsPrintsUsageAndFails) {
  std::string err;
  EXPECT_EQ(run({}, nullptr, &err), 1);
  EXPECT_NE(err.find("subcommands"), std::string::npos);
}

TEST(Cli, HelpSucceeds) {
  std::string out;
  EXPECT_EQ(run({"--help"}, &out), 0);
  EXPECT_NE(out.find("communities"), std::string::npos);
}

TEST(Cli, UnknownSubcommandFails) {
  std::string err;
  EXPECT_EQ(run({"frobnicate"}, nullptr, &err), 1);
  EXPECT_NE(err.find("unknown subcommand"), std::string::npos);
}

TEST(Cli, GenerateThenStats) {
  const std::string path = temp_path("cli_er.edges");
  std::string out;
  ASSERT_EQ(run({"generate", "--type", "er", "--n", "40", "--p", "0.3", "--seed", "5",
                 "--output", path.c_str()},
                &out),
            0);
  EXPECT_NE(out.find("wrote 40 vertices"), std::string::npos);

  ASSERT_EQ(run({"stats", "--input", path.c_str()}, &out), 0);
  EXPECT_NE(out.find("vertices"), std::string::npos);
  EXPECT_NE(out.find("K2"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Cli, GenerateAllTypes) {
  for (const char* type : {"er", "ba", "ws", "complete", "regular"}) {
    const std::string path = temp_path(std::string("cli_") + type + ".edges");
    EXPECT_EQ(run({"generate", "--type", type, "--n", "20", "--k", "4", "--output",
                   path.c_str()}),
              0)
        << type;
    std::remove(path.c_str());
  }
}

TEST(Cli, GenerateUnknownTypeFails) {
  const std::string path = temp_path("cli_bad.edges");
  std::string err;
  EXPECT_EQ(run({"generate", "--type", "nope", "--output", path.c_str()}, nullptr, &err), 1);
  EXPECT_NE(err.find("unknown --type"), std::string::npos);
}

TEST(Cli, ClusterFineAndCoarseWithExports) {
  const std::string graph_path = temp_path("cli_cluster.edges");
  ASSERT_EQ(run({"generate", "--type", "er", "--n", "30", "--p", "0.3", "--output",
                 graph_path.c_str()}),
            0);
  std::string out;
  ASSERT_EQ(run({"cluster", "--input", graph_path.c_str(), "--mode", "fine"}, &out), 0);
  EXPECT_NE(out.find("dendrogram:"), std::string::npos);

  const std::string newick_path = temp_path("cli_tree.nwk");
  const std::string merges_path = temp_path("cli_merges.txt");
  ASSERT_EQ(run({"cluster", "--input", graph_path.c_str(), "--mode", "coarse", "--newick",
                 newick_path.c_str(), "--merges", merges_path.c_str()},
                &out),
            0);
  EXPECT_NE(out.find("coarse:"), std::string::npos);
  std::ifstream newick(newick_path);
  std::string tree;
  std::getline(newick, tree);
  EXPECT_FALSE(tree.empty());
  EXPECT_EQ(tree.back(), ';');
  std::ifstream merges(merges_path);
  std::string header;
  std::getline(merges, header);
  EXPECT_NE(header.find("# leaves="), std::string::npos);
  std::remove(graph_path.c_str());
  std::remove(newick_path.c_str());
  std::remove(merges_path.c_str());
}

TEST(Cli, ClusterRejectsBadMode) {
  std::string err;
  EXPECT_EQ(run({"cluster", "--input", "x.edges", "--mode", "medium"}, nullptr, &err), 1);
  EXPECT_NE(err.find("fine or coarse"), std::string::npos);
}

TEST(Cli, MissingInputFileIsRuntimeError) {
  std::string err;
  EXPECT_EQ(run({"stats", "--input", "/no/such/file.edges"}, nullptr, &err), 2);
  EXPECT_NE(err.find("error"), std::string::npos);
}

TEST(Cli, ClusterDeadlineExceededExitsThree) {
  const std::string path = temp_path("cli_deadline.edges");
  ASSERT_EQ(run({"generate", "--type", "er", "--n", "3000", "--p", "0.01", "--seed", "7",
                 "--output", path.c_str()}),
            0);
  std::string err;
  // 1 ms is far below the clustering run time on this graph, so the deadline
  // must trip mid-phase and surface as a Status, not an abort.
  EXPECT_EQ(run({"cluster", "--input", path.c_str(), "--deadline-ms", "1"}, nullptr, &err),
            3);
  EXPECT_NE(err.find("deadline"), std::string::npos);
  // The stop-details line: reason and elapsed time.
  EXPECT_NE(err.find("stopped: deadline exceeded after"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Cli, ClusterMemoryBudgetExitsThree) {
  const std::string path = temp_path("cli_budget.edges");
  ASSERT_EQ(run({"generate", "--type", "er", "--n", "3000", "--p", "0.01", "--seed", "7",
                 "--output", path.c_str()}),
            0);
  std::string err;
  EXPECT_EQ(run({"cluster", "--input", path.c_str(), "--max-memory-mb", "1"}, nullptr, &err),
            3);
  EXPECT_NE(err.find("resource exhausted"), std::string::npos);
  EXPECT_NE(err.find("memory budget"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Cli, ClusterNoDeadlineByDefault) {
  const std::string path = temp_path("cli_nodeadline.edges");
  ASSERT_EQ(run({"generate", "--type", "er", "--n", "40", "--p", "0.2", "--output",
                 path.c_str()}),
            0);
  std::string out;
  EXPECT_EQ(run({"cluster", "--input", path.c_str(), "--max-memory-mb", "0"}, &out), 0);
  EXPECT_NE(out.find("dendrogram:"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Cli, ClusterZeroDeadlineTripsOnFirstPoll) {
  // An explicit 0 arms a deadline that is already past, so the run stops at
  // the first poll instead of underflowing into "unlimited".
  const std::string path = temp_path("cli_zerodeadline.edges");
  ASSERT_EQ(run({"generate", "--type", "er", "--n", "40", "--p", "0.2", "--output",
                 path.c_str()}),
            0);
  std::string err;
  EXPECT_EQ(run({"cluster", "--input", path.c_str(), "--deadline-ms", "0"}, nullptr, &err),
            3);
  EXPECT_NE(err.find("stopped: deadline exceeded after"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Cli, ClusterCheckpointResumeRoundTrip) {
  const std::string path = temp_path("cli_ckpt.edges");
  const std::string dir = temp_path("cli_ckpt_dir");
  const std::string merges_a = temp_path("cli_ckpt_a.txt");
  const std::string merges_b = temp_path("cli_ckpt_b.txt");
  ASSERT_EQ(run({"generate", "--type", "er", "--n", "200", "--p", "0.05", "--seed", "7",
                 "--output", path.c_str()}),
            0);
  std::string out;
  ASSERT_EQ(run({"cluster", "--input", path.c_str(), "--checkpoint-dir", dir.c_str(),
                 "--checkpoint-every-ms", "0", "--merges", merges_a.c_str()},
                &out),
            0);
  EXPECT_NE(out.find("checkpointing to"), std::string::npos);

  ASSERT_EQ(run({"cluster", "--input", path.c_str(), "--checkpoint-dir", dir.c_str(),
                 "--resume", "--merges", merges_b.c_str()},
                &out),
            0);
  EXPECT_NE(out.find("resuming from"), std::string::npos);

  auto slurp = [](const std::string& file) {
    std::ifstream in(file);
    return std::string{std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>()};
  };
  const std::string reference = slurp(merges_a);
  ASSERT_FALSE(reference.empty());
  EXPECT_EQ(slurp(merges_b), reference);

  std::remove(path.c_str());
  std::remove(merges_a.c_str());
  std::remove(merges_b.c_str());
  std::filesystem::remove_all(dir);
}

TEST(Cli, ClusterResumeRequiresCheckpointDir) {
  std::string err;
  EXPECT_EQ(run({"cluster", "--input", "x.edges", "--resume"}, nullptr, &err), 1);
  EXPECT_NE(err.find("--resume requires --checkpoint-dir"), std::string::npos);
}

TEST(Cli, ClusterStopPrintsCheckpointHintWhenSnapshotExists) {
  const std::string path = temp_path("cli_ckpt_hint.edges");
  const std::string dir = temp_path("cli_ckpt_hint_dir");
  ASSERT_EQ(run({"generate", "--type", "er", "--n", "120", "--p", "0.08", "--seed", "9",
                 "--output", path.c_str()}),
            0);
  // Leave a snapshot behind, then stop a second run before it does anything:
  // the exit-3 report must point at the snapshot and the --resume flag.
  ASSERT_EQ(run({"cluster", "--input", path.c_str(), "--checkpoint-dir", dir.c_str(),
                 "--checkpoint-every-ms", "0"}),
            0);
  std::string err;
  EXPECT_EQ(run({"cluster", "--input", path.c_str(), "--checkpoint-dir", dir.c_str(),
                 "--checkpoint-every-ms", "0", "--deadline-ms", "0"},
                nullptr, &err),
            3);
  EXPECT_NE(err.find("checkpoint: "), std::string::npos);
  EXPECT_NE(err.find("--resume"), std::string::npos);
  std::remove(path.c_str());
  std::filesystem::remove_all(dir);
}

TEST(Cli, MalformedInputLinesWarnOnStderr) {
  const std::string path = temp_path("cli_malformed.edges");
  {
    std::ofstream file(path);
    file << "0 1 1.0\n1 2 abc\n2 3 inf\n3 4\n4 5 2.0\n";
  }
  std::string err;
  ASSERT_EQ(run({"stats", "--input", path.c_str()}, nullptr, &err), 0);
  EXPECT_NE(err.find("warning: skipped 2 malformed line(s)"), std::string::npos);

  err.clear();
  ASSERT_EQ(run({"cluster", "--input", path.c_str()}, nullptr, &err), 0);
  EXPECT_NE(err.find("warning: skipped 2 malformed line(s)"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Cli, CommunitiesOnTwoTriangles) {
  const std::string path = temp_path("cli_tri.edges");
  {
    std::ofstream file(path);
    file << "0 1\n1 2\n0 2\n3 4\n4 5\n3 5\n2 3 0.4\n";
  }
  std::string out;
  ASSERT_EQ(run({"communities", "--input", path.c_str(), "--top", "5"}, &out), 0);
  EXPECT_NE(out.find("partition density"), std::string::npos);
  EXPECT_NE(out.find("communities over"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Cli, AssocBuildsGraphFromCorpus) {
  const std::string corpus_path = temp_path("cli_corpus.txt");
  {
    std::ofstream file(corpus_path);
    file << "alpha bravo charlie\n"
            "alpha bravo\n"
            "charlie delta\n"
            "alpha bravo delta\n";
  }
  const std::string edges_path = temp_path("cli_assoc.edges");
  const std::string words_path = temp_path("cli_assoc.words");
  std::string out;
  ASSERT_EQ(run({"assoc", "--input", corpus_path.c_str(), "--alpha", "1.0", "--output",
                 edges_path.c_str(), "--words", words_path.c_str()},
                &out),
            0);
  EXPECT_NE(out.find("4 documents"), std::string::npos);
  // The strongest association (alpha, bravo: always together) must be an edge.
  std::ifstream words(words_path);
  std::string line;
  bool saw_alpha = false;
  while (std::getline(words, line)) {
    if (line.find("alpha") != std::string::npos) saw_alpha = true;
  }
  EXPECT_TRUE(saw_alpha);
  std::ifstream edges(edges_path);
  std::size_t edge_lines = 0;
  while (std::getline(edges, line)) {
    if (!line.empty() && line[0] != '#') ++edge_lines;
  }
  EXPECT_GT(edge_lines, 0u);
  std::remove(corpus_path.c_str());
  std::remove(edges_path.c_str());
  std::remove(words_path.c_str());
}

TEST(Cli, AssocMissingCorpusFails) {
  std::string err;
  EXPECT_EQ(run({"assoc", "--input", "/no/such.txt", "--output", "/tmp/x.edges"}, nullptr,
                &err),
            2);
  EXPECT_NE(err.find("error"), std::string::npos);
}

TEST(Cli, CommunitiesEmptyGraph) {
  const std::string path = temp_path("cli_empty.edges");
  {
    std::ofstream file(path);
    file << "# no edges\n";
  }
  std::string out;
  EXPECT_EQ(run({"communities", "--input", path.c_str()}, &out), 0);
  EXPECT_NE(out.find("no edges"), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace lc::cli
