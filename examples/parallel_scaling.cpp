// Parallel scaling demo: run the §VI multi-threaded phases with 1..T threads
// and report wall-clock times plus the work/span simulated speedups (what the
// same run would achieve with that many real cores — see DESIGN.md §2 on the
// single-core substitution).
//
//   $ ./examples/parallel_scaling [--vertices 400] [--p 0.3] [--max-threads 6]
//
// Initialization (Algorithm 1) scales near-linearly; chunk-parallel sweeping
// only pays off when chunks dwarf |E| (see bench/fig6_scaling for the full
// analysis), so its simulated column is honest about the overhead.
#include <cstdio>

#include "linkcluster.hpp"
#include "util/cli.hpp"
#include "util/stopwatch.hpp"
#include "util/strings.hpp"

int main(int argc, char** argv) {
  lc::CliFlags flags;
  flags.add_int("vertices", 400, "graph size");
  flags.add_double("p", 0.3, "edge probability");
  flags.add_int("max-threads", 6, "largest thread count to try");
  flags.add_int("seed", 3, "graph seed");
  if (!flags.parse(argc, argv)) return 1;

  const lc::graph::WeightedGraph graph = lc::graph::erdos_renyi(
      static_cast<std::size_t>(flags.get_int("vertices")), flags.get_double("p"),
      {static_cast<std::uint64_t>(flags.get_int("seed")), lc::graph::WeightPolicy::kUniform});
  std::printf("graph: %zu vertices, %zu edges\n", graph.vertex_count(), graph.edge_count());

  const lc::core::EdgeIndex index(graph.edge_count(), lc::core::EdgeOrder::kShuffled, 42);
  std::uint64_t init_serial_work = 0;
  std::uint64_t sweep_serial_work = 0;
  double init_serial_wall = 0.0;

  std::printf("\n%-8s %-12s %-10s %-16s %-16s\n", "threads", "init wall", "init x",
              "init simulated", "sweep simulated");
  for (std::size_t threads = 1;
       threads <= static_cast<std::size_t>(flags.get_int("max-threads"));
       threads = threads == 1 ? 2 : threads + 2) {
    lc::parallel::ThreadPool pool(threads);

    lc::sim::WorkLedger init_ledger;
    lc::Stopwatch watch;
    lc::core::SimilarityMap map =
        lc::core::build_similarity_map_parallel(graph, pool, &init_ledger);
    const double init_wall = watch.seconds();
    map.sort_by_score(&pool);

    lc::sim::WorkLedger sweep_ledger;
    lc::core::coarse_sweep(graph, map, index, {}, &pool, &sweep_ledger);

    if (threads == 1) {
      init_serial_work = init_ledger.total_work();
      sweep_serial_work = sweep_ledger.total_work();
      init_serial_wall = init_wall;
    }
    std::printf("%-8zu %-12s %-10s %-16s %-16s\n", threads,
                lc::format_seconds(init_wall).c_str(),
                lc::strprintf("%.2fx", init_serial_wall / std::max(init_wall, 1e-9)).c_str(),
                lc::strprintf("%.2fx", init_ledger.speedup_vs(init_serial_work)).c_str(),
                lc::strprintf("%.2fx", sweep_ledger.speedup_vs(sweep_serial_work)).c_str());
  }
  std::printf("\n(wall speedup reflects this host's real core count; simulated columns are\n"
              " the work/span predictions for a machine with that many cores)\n");
  return 0;
}
