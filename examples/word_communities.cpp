// Word communities: the paper's §III use case end to end — a corpus of short
// messages becomes a word-association network (PMI weights over per-message
// co-occurrence), whose *edges* are clustered so that one word can belong to
// several overlapping communities.
//
//   $ ./examples/word_communities [--docs 8000] [--alpha 0.05] [--top 8]
//
// Uses the synthetic tweet corpus (the paper's Twitter dataset is not
// public); feed your own corpus by adapting the `documents` loop.
#include <algorithm>
#include <cstdio>
#include <map>
#include <set>

#include "linkcluster.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  lc::CliFlags flags;
  flags.add_int("docs", 8000, "synthetic corpus size");
  flags.add_int("vocab", 4000, "synthetic vocabulary size");
  flags.add_double("alpha", 0.05, "fraction of top candidate words to keep");
  flags.add_int("top", 8, "communities to print");
  flags.add_int("seed", 7, "corpus seed");
  if (!flags.parse(argc, argv)) return 1;

  // 1. Corpus -> tokens (tokenize, strip stop words, Porter-stem).
  lc::text::SyntheticCorpusOptions corpus_options;
  corpus_options.num_documents = static_cast<std::size_t>(flags.get_int("docs"));
  corpus_options.vocab_size = static_cast<std::size_t>(flags.get_int("vocab"));
  corpus_options.num_topics = 12;
  corpus_options.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  const lc::text::Corpus corpus = lc::text::generate_corpus(corpus_options);
  std::vector<lc::text::TokenizedDocument> documents;
  documents.reserve(corpus.size());
  for (const std::string& message : corpus.documents) {
    documents.push_back(lc::text::tokenize(message));
  }

  // 2. Rank candidate words, keep the top alpha fraction, build the
  //    association graph (Eq. 3 of the paper).
  const lc::text::Vocabulary vocab = lc::text::Vocabulary::build(documents);
  const lc::text::AssociationGraph ag =
      lc::text::build_association_graph(documents, vocab, flags.get_double("alpha"));
  std::printf("association graph: %zu words, %zu edges, density %.3f\n",
              ag.graph.vertex_count(), ag.graph.edge_count(), ag.graph.density());
  if (ag.graph.edge_count() < 2) {
    std::printf("graph too small; raise --alpha or --docs\n");
    return 0;
  }

  // 3. Link clustering + maximum-partition-density cut.
  const lc::core::ClusterResult result = lc::core::LinkClusterer().cluster(ag.graph);
  const lc::core::DensityCut cut =
      lc::core::best_partition_density_cut(ag.graph, result.edge_index, result.dendrogram);
  std::printf("best cut: partition density %.3f after %zu merges\n", cut.density,
              cut.event_count);

  // 4. Present communities as word sets (via their edges' endpoints), largest
  //    first; a word may appear in several communities — the point of link
  //    clustering (overlapping communities).
  std::map<lc::core::EdgeIdx, std::set<lc::graph::VertexId>> members;
  std::map<lc::core::EdgeIdx, std::size_t> edge_counts;
  for (std::size_t idx = 0; idx < cut.labels.size(); ++idx) {
    const lc::graph::Edge& e =
        ag.graph.edge(result.edge_index.edge_at(static_cast<lc::core::EdgeIdx>(idx)));
    members[cut.labels[idx]].insert(e.u);
    members[cut.labels[idx]].insert(e.v);
    ++edge_counts[cut.labels[idx]];
  }
  std::vector<std::pair<lc::core::EdgeIdx, std::size_t>> ordered;
  ordered.reserve(members.size());
  for (const auto& [label, words] : members) ordered.emplace_back(label, words.size());
  std::sort(ordered.begin(), ordered.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });

  const auto top = static_cast<std::size_t>(flags.get_int("top"));
  std::printf("\n%zu link communities; the %zu largest:\n", members.size(),
              std::min(top, ordered.size()));
  std::size_t overlapping_words = 0;
  std::map<lc::graph::VertexId, std::size_t> community_count;
  for (const auto& [label, words] : members) {
    for (lc::graph::VertexId v : words) ++community_count[v];
  }
  for (const auto& [word, count] : community_count) {
    if (count > 1) ++overlapping_words;
  }
  for (std::size_t i = 0; i < std::min(top, ordered.size()); ++i) {
    const auto label = ordered[i].first;
    std::printf("  community %u (%zu words, %zu edges):", label, members[label].size(),
                edge_counts[label]);
    std::size_t shown = 0;
    for (lc::graph::VertexId v : members[label]) {
      std::printf(" %s", ag.words[v].c_str());
      if (++shown >= 10) {
        std::printf(" ...");
        break;
      }
    }
    std::printf("\n");
  }
  std::printf("\nwords in more than one community (overlap): %zu\n", overlapping_words);
  return 0;
}
