// Coarse-grained clustering demo: run the §V algorithm with live epoch
// reporting and inspect the resulting coarse dendrogram level by level.
//
//   $ ./examples/coarse_dendrogram [--gamma 2] [--phi 50] [--delta0 200]
//
// Shows the soundness property in action: the cluster count never drops by
// more than gamma between consecutive levels (rollbacks re-estimate the chunk
// size when it would), and processing stops once phi clusters remain —
// skipping the tail of the pair list entirely.
#include <cstdio>

#include "linkcluster.hpp"
#include "util/cli.hpp"
#include "util/strings.hpp"

namespace {

const char* kind_name(lc::core::EpochKind kind) {
  switch (kind) {
    case lc::core::EpochKind::kHeadFresh:
      return "head";
    case lc::core::EpochKind::kTailFresh:
      return "tail";
    case lc::core::EpochKind::kRollback:
      return "ROLLBACK";
    case lc::core::EpochKind::kReused:
      return "reused";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  lc::CliFlags flags;
  flags.add_int("vertices", 120, "graph size");
  flags.add_double("p", 0.3, "edge probability");
  flags.add_double("gamma", 2.0, "max cluster-ratio per level (soundness)");
  flags.add_int("phi", 50, "stop when this few clusters remain");
  flags.add_int("delta0", 200, "initial chunk size (incident pairs)");
  flags.add_int("seed", 11, "graph seed");
  if (!flags.parse(argc, argv)) return 1;

  const lc::graph::WeightedGraph graph = lc::graph::erdos_renyi(
      static_cast<std::size_t>(flags.get_int("vertices")), flags.get_double("p"),
      {static_cast<std::uint64_t>(flags.get_int("seed")), lc::graph::WeightPolicy::kUniform});
  const lc::graph::GraphStats stats = lc::graph::compute_stats(graph);
  std::printf("graph: |V|=%zu |E|=%zu K1=%llu K2=%llu\n", stats.vertices, stats.edges,
              static_cast<unsigned long long>(stats.k1),
              static_cast<unsigned long long>(stats.k2));

  lc::core::LinkClusterer::Config config;
  config.mode = lc::core::ClusterMode::kCoarse;
  config.coarse.gamma = flags.get_double("gamma");
  config.coarse.phi = static_cast<std::size_t>(flags.get_int("phi"));
  config.coarse.delta0 = static_cast<std::uint64_t>(flags.get_int("delta0"));
  const lc::core::ClusterResult result = lc::core::LinkClusterer(config).cluster(graph);
  const lc::core::CoarseResult& coarse = *result.coarse;

  std::printf("\nepoch log:\n");
  for (std::size_t i = 0; i < coarse.epochs.size(); ++i) {
    const lc::core::EpochRecord& epoch = coarse.epochs[i];
    std::printf("  epoch %2zu [%-8s] chunk=%-6llu clusters %zu -> %zu\n", i + 1,
                kind_name(epoch.kind), static_cast<unsigned long long>(epoch.chunk_size),
                epoch.beta_before, epoch.beta_after);
  }

  std::printf("\ncoarse dendrogram levels:\n");
  for (const lc::core::CoarseLevel& level : coarse.levels) {
    std::printf("  level %2u: %4zu clusters after %s pairs (threshold %.4f)\n", level.level,
                level.clusters, lc::with_commas(level.pairs_processed).c_str(),
                level.threshold_score);
  }

  std::printf("\nsummary: %zu levels, %zu rollbacks, %zu reuses, %s soundness violations\n",
              coarse.levels.size(), coarse.rollback_count, coarse.reuse_count,
              coarse.soundness_violations == 0 ? "no" : "some");
  std::printf("pairs processed: %s of %s (%.1f%%) — the tail was never touched\n",
              lc::with_commas(coarse.pairs_processed).c_str(),
              lc::with_commas(coarse.pairs_total).c_str(),
              100.0 * static_cast<double>(coarse.pairs_processed) /
                  static_cast<double>(std::max<std::uint64_t>(1, coarse.pairs_total)));
  std::printf("initialization %.1f ms, sweeping %.1f ms\n",
              result.timings.initialization_seconds * 1e3,
              result.timings.sweeping_seconds * 1e3);
  return 0;
}
