// Quickstart: build a small weighted graph, run link clustering, inspect the
// dendrogram, and cut it at the maximum-partition-density level.
//
//   $ ./examples/quickstart
//
// The graph is two triangles joined by a bridge — the canonical "two link
// communities" example: edge clustering groups the triangle edges together
// and leaves the bridge on its own side of the cut.
#include <cstdio>

#include "linkcluster.hpp"

int main() {
  // 1. Build the graph (vertices 0..5, two triangles + a bridge edge).
  lc::graph::GraphBuilder builder(6);
  builder.add_edge(0, 1, 1.0);
  builder.add_edge(1, 2, 1.0);
  builder.add_edge(0, 2, 1.0);
  builder.add_edge(3, 4, 1.0);
  builder.add_edge(4, 5, 1.0);
  builder.add_edge(3, 5, 1.0);
  builder.add_edge(2, 3, 0.5);  // bridge
  const lc::graph::WeightedGraph graph = builder.build();
  std::printf("graph: %zu vertices, %zu edges\n", graph.vertex_count(), graph.edge_count());

  // 2. Cluster the edges (fine-grained mode, default configuration).
  const lc::core::ClusterResult result = lc::core::LinkClusterer().cluster(graph);
  std::printf("similarity map: K1 = %zu keys covering K2 = %llu incident pairs\n",
              result.k1, static_cast<unsigned long long>(result.k2));

  // 3. Walk the dendrogram: every event is "cluster `from` joins `into` at
  //    similarity s".
  std::printf("\ndendrogram (%zu merges):\n", result.dendrogram.events().size());
  for (const lc::core::MergeEvent& event : result.dendrogram.events()) {
    std::printf("  level %2u: cluster %u -> %u at similarity %.3f\n", event.level,
                event.from, event.into, event.similarity);
  }

  // 4. Cut at the maximum partition density (Ahn et al.'s objective).
  const lc::core::DensityCut cut =
      lc::core::best_partition_density_cut(graph, result.edge_index, result.dendrogram);
  std::printf("\nbest cut: %zu merges applied, partition density %.3f\n", cut.event_count,
              cut.density);
  std::printf("link communities (edges grouped by cluster):\n");
  for (lc::core::EdgeIdx label = 0; label < cut.labels.size(); ++label) {
    bool first = true;
    for (std::size_t idx = 0; idx < cut.labels.size(); ++idx) {
      if (cut.labels[idx] != label) continue;
      const lc::graph::Edge& e =
          graph.edge(result.edge_index.edge_at(static_cast<lc::core::EdgeIdx>(idx)));
      if (first) {
        std::printf("  community %u:", label);
        first = false;
      }
      std::printf(" (%u-%u)", e.u, e.v);
    }
    if (!first) std::printf("\n");
  }
  return 0;
}
