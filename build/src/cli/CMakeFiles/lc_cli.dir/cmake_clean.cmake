file(REMOVE_RECURSE
  "CMakeFiles/lc_cli.dir/commands.cpp.o"
  "CMakeFiles/lc_cli.dir/commands.cpp.o.d"
  "liblc_cli.a"
  "liblc_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lc_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
