file(REMOVE_RECURSE
  "liblc_cli.a"
)
