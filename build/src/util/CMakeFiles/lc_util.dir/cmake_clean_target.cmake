file(REMOVE_RECURSE
  "liblc_util.a"
)
