# Empty compiler generated dependencies file for lc_util.
# This may be replaced when dependencies are built.
