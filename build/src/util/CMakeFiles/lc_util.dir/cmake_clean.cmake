file(REMOVE_RECURSE
  "CMakeFiles/lc_util.dir/cli.cpp.o"
  "CMakeFiles/lc_util.dir/cli.cpp.o.d"
  "CMakeFiles/lc_util.dir/logging.cpp.o"
  "CMakeFiles/lc_util.dir/logging.cpp.o.d"
  "CMakeFiles/lc_util.dir/memory.cpp.o"
  "CMakeFiles/lc_util.dir/memory.cpp.o.d"
  "CMakeFiles/lc_util.dir/rng.cpp.o"
  "CMakeFiles/lc_util.dir/rng.cpp.o.d"
  "CMakeFiles/lc_util.dir/strings.cpp.o"
  "CMakeFiles/lc_util.dir/strings.cpp.o.d"
  "CMakeFiles/lc_util.dir/table.cpp.o"
  "CMakeFiles/lc_util.dir/table.cpp.o.d"
  "liblc_util.a"
  "liblc_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lc_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
