# Empty compiler generated dependencies file for lc_numeric.
# This may be replaced when dependencies are built.
