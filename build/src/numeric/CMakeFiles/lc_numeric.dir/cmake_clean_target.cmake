file(REMOVE_RECURSE
  "liblc_numeric.a"
)
