file(REMOVE_RECURSE
  "CMakeFiles/lc_numeric.dir/least_squares.cpp.o"
  "CMakeFiles/lc_numeric.dir/least_squares.cpp.o.d"
  "CMakeFiles/lc_numeric.dir/series.cpp.o"
  "CMakeFiles/lc_numeric.dir/series.cpp.o.d"
  "CMakeFiles/lc_numeric.dir/sigmoid.cpp.o"
  "CMakeFiles/lc_numeric.dir/sigmoid.cpp.o.d"
  "liblc_numeric.a"
  "liblc_numeric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lc_numeric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
