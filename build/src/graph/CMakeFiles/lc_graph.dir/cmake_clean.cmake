file(REMOVE_RECURSE
  "CMakeFiles/lc_graph.dir/components.cpp.o"
  "CMakeFiles/lc_graph.dir/components.cpp.o.d"
  "CMakeFiles/lc_graph.dir/generators.cpp.o"
  "CMakeFiles/lc_graph.dir/generators.cpp.o.d"
  "CMakeFiles/lc_graph.dir/graph.cpp.o"
  "CMakeFiles/lc_graph.dir/graph.cpp.o.d"
  "CMakeFiles/lc_graph.dir/io.cpp.o"
  "CMakeFiles/lc_graph.dir/io.cpp.o.d"
  "CMakeFiles/lc_graph.dir/stats.cpp.o"
  "CMakeFiles/lc_graph.dir/stats.cpp.o.d"
  "liblc_graph.a"
  "liblc_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lc_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
