file(REMOVE_RECURSE
  "liblc_graph.a"
)
