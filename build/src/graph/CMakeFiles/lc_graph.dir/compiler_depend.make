# Empty compiler generated dependencies file for lc_graph.
# This may be replaced when dependencies are built.
