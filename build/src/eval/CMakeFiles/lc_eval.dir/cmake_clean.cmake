file(REMOVE_RECURSE
  "CMakeFiles/lc_eval.dir/clustering_metrics.cpp.o"
  "CMakeFiles/lc_eval.dir/clustering_metrics.cpp.o.d"
  "liblc_eval.a"
  "liblc_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lc_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
