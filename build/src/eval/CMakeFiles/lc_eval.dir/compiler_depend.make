# Empty compiler generated dependencies file for lc_eval.
# This may be replaced when dependencies are built.
