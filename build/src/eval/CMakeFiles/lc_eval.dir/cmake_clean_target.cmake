file(REMOVE_RECURSE
  "liblc_eval.a"
)
