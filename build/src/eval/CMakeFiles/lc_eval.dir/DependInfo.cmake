
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/eval/clustering_metrics.cpp" "src/eval/CMakeFiles/lc_eval.dir/clustering_metrics.cpp.o" "gcc" "src/eval/CMakeFiles/lc_eval.dir/clustering_metrics.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/lc_util.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/lc_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/lc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/lc_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/lc_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
