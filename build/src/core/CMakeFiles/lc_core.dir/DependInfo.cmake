
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/cluster_array.cpp" "src/core/CMakeFiles/lc_core.dir/cluster_array.cpp.o" "gcc" "src/core/CMakeFiles/lc_core.dir/cluster_array.cpp.o.d"
  "/root/repo/src/core/coarse.cpp" "src/core/CMakeFiles/lc_core.dir/coarse.cpp.o" "gcc" "src/core/CMakeFiles/lc_core.dir/coarse.cpp.o.d"
  "/root/repo/src/core/dendrogram.cpp" "src/core/CMakeFiles/lc_core.dir/dendrogram.cpp.o" "gcc" "src/core/CMakeFiles/lc_core.dir/dendrogram.cpp.o.d"
  "/root/repo/src/core/dendrogram_io.cpp" "src/core/CMakeFiles/lc_core.dir/dendrogram_io.cpp.o" "gcc" "src/core/CMakeFiles/lc_core.dir/dendrogram_io.cpp.o.d"
  "/root/repo/src/core/dsu.cpp" "src/core/CMakeFiles/lc_core.dir/dsu.cpp.o" "gcc" "src/core/CMakeFiles/lc_core.dir/dsu.cpp.o.d"
  "/root/repo/src/core/edge_index.cpp" "src/core/CMakeFiles/lc_core.dir/edge_index.cpp.o" "gcc" "src/core/CMakeFiles/lc_core.dir/edge_index.cpp.o.d"
  "/root/repo/src/core/hierarchy.cpp" "src/core/CMakeFiles/lc_core.dir/hierarchy.cpp.o" "gcc" "src/core/CMakeFiles/lc_core.dir/hierarchy.cpp.o.d"
  "/root/repo/src/core/link_clusterer.cpp" "src/core/CMakeFiles/lc_core.dir/link_clusterer.cpp.o" "gcc" "src/core/CMakeFiles/lc_core.dir/link_clusterer.cpp.o.d"
  "/root/repo/src/core/partition_density.cpp" "src/core/CMakeFiles/lc_core.dir/partition_density.cpp.o" "gcc" "src/core/CMakeFiles/lc_core.dir/partition_density.cpp.o.d"
  "/root/repo/src/core/similarity.cpp" "src/core/CMakeFiles/lc_core.dir/similarity.cpp.o" "gcc" "src/core/CMakeFiles/lc_core.dir/similarity.cpp.o.d"
  "/root/repo/src/core/sweep.cpp" "src/core/CMakeFiles/lc_core.dir/sweep.cpp.o" "gcc" "src/core/CMakeFiles/lc_core.dir/sweep.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/lc_util.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/lc_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/lc_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/lc_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
