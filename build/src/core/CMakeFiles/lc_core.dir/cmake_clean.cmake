file(REMOVE_RECURSE
  "CMakeFiles/lc_core.dir/cluster_array.cpp.o"
  "CMakeFiles/lc_core.dir/cluster_array.cpp.o.d"
  "CMakeFiles/lc_core.dir/coarse.cpp.o"
  "CMakeFiles/lc_core.dir/coarse.cpp.o.d"
  "CMakeFiles/lc_core.dir/dendrogram.cpp.o"
  "CMakeFiles/lc_core.dir/dendrogram.cpp.o.d"
  "CMakeFiles/lc_core.dir/dendrogram_io.cpp.o"
  "CMakeFiles/lc_core.dir/dendrogram_io.cpp.o.d"
  "CMakeFiles/lc_core.dir/dsu.cpp.o"
  "CMakeFiles/lc_core.dir/dsu.cpp.o.d"
  "CMakeFiles/lc_core.dir/edge_index.cpp.o"
  "CMakeFiles/lc_core.dir/edge_index.cpp.o.d"
  "CMakeFiles/lc_core.dir/hierarchy.cpp.o"
  "CMakeFiles/lc_core.dir/hierarchy.cpp.o.d"
  "CMakeFiles/lc_core.dir/link_clusterer.cpp.o"
  "CMakeFiles/lc_core.dir/link_clusterer.cpp.o.d"
  "CMakeFiles/lc_core.dir/partition_density.cpp.o"
  "CMakeFiles/lc_core.dir/partition_density.cpp.o.d"
  "CMakeFiles/lc_core.dir/similarity.cpp.o"
  "CMakeFiles/lc_core.dir/similarity.cpp.o.d"
  "CMakeFiles/lc_core.dir/sweep.cpp.o"
  "CMakeFiles/lc_core.dir/sweep.cpp.o.d"
  "liblc_core.a"
  "liblc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
