file(REMOVE_RECURSE
  "CMakeFiles/lc_baseline.dir/edge_similarity_matrix.cpp.o"
  "CMakeFiles/lc_baseline.dir/edge_similarity_matrix.cpp.o.d"
  "CMakeFiles/lc_baseline.dir/memory_model.cpp.o"
  "CMakeFiles/lc_baseline.dir/memory_model.cpp.o.d"
  "CMakeFiles/lc_baseline.dir/mst.cpp.o"
  "CMakeFiles/lc_baseline.dir/mst.cpp.o.d"
  "CMakeFiles/lc_baseline.dir/nbm.cpp.o"
  "CMakeFiles/lc_baseline.dir/nbm.cpp.o.d"
  "CMakeFiles/lc_baseline.dir/slink.cpp.o"
  "CMakeFiles/lc_baseline.dir/slink.cpp.o.d"
  "liblc_baseline.a"
  "liblc_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lc_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
