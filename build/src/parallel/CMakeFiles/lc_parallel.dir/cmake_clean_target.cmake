file(REMOVE_RECURSE
  "liblc_parallel.a"
)
