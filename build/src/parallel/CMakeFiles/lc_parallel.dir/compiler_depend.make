# Empty compiler generated dependencies file for lc_parallel.
# This may be replaced when dependencies are built.
