file(REMOVE_RECURSE
  "CMakeFiles/lc_parallel.dir/thread_pool.cpp.o"
  "CMakeFiles/lc_parallel.dir/thread_pool.cpp.o.d"
  "liblc_parallel.a"
  "liblc_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lc_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
