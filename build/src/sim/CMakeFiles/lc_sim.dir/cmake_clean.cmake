file(REMOVE_RECURSE
  "CMakeFiles/lc_sim.dir/work_ledger.cpp.o"
  "CMakeFiles/lc_sim.dir/work_ledger.cpp.o.d"
  "liblc_sim.a"
  "liblc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
