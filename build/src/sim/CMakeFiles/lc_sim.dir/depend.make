# Empty dependencies file for lc_sim.
# This may be replaced when dependencies are built.
