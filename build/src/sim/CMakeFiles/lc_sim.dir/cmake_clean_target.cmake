file(REMOVE_RECURSE
  "liblc_sim.a"
)
