
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/text/association.cpp" "src/text/CMakeFiles/lc_text.dir/association.cpp.o" "gcc" "src/text/CMakeFiles/lc_text.dir/association.cpp.o.d"
  "/root/repo/src/text/corpus.cpp" "src/text/CMakeFiles/lc_text.dir/corpus.cpp.o" "gcc" "src/text/CMakeFiles/lc_text.dir/corpus.cpp.o.d"
  "/root/repo/src/text/porter.cpp" "src/text/CMakeFiles/lc_text.dir/porter.cpp.o" "gcc" "src/text/CMakeFiles/lc_text.dir/porter.cpp.o.d"
  "/root/repo/src/text/stopwords.cpp" "src/text/CMakeFiles/lc_text.dir/stopwords.cpp.o" "gcc" "src/text/CMakeFiles/lc_text.dir/stopwords.cpp.o.d"
  "/root/repo/src/text/tokenizer.cpp" "src/text/CMakeFiles/lc_text.dir/tokenizer.cpp.o" "gcc" "src/text/CMakeFiles/lc_text.dir/tokenizer.cpp.o.d"
  "/root/repo/src/text/vocabulary.cpp" "src/text/CMakeFiles/lc_text.dir/vocabulary.cpp.o" "gcc" "src/text/CMakeFiles/lc_text.dir/vocabulary.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/lc_util.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/lc_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
