# Empty compiler generated dependencies file for lc_text.
# This may be replaced when dependencies are built.
