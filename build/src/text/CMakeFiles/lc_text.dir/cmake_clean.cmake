file(REMOVE_RECURSE
  "CMakeFiles/lc_text.dir/association.cpp.o"
  "CMakeFiles/lc_text.dir/association.cpp.o.d"
  "CMakeFiles/lc_text.dir/corpus.cpp.o"
  "CMakeFiles/lc_text.dir/corpus.cpp.o.d"
  "CMakeFiles/lc_text.dir/porter.cpp.o"
  "CMakeFiles/lc_text.dir/porter.cpp.o.d"
  "CMakeFiles/lc_text.dir/stopwords.cpp.o"
  "CMakeFiles/lc_text.dir/stopwords.cpp.o.d"
  "CMakeFiles/lc_text.dir/tokenizer.cpp.o"
  "CMakeFiles/lc_text.dir/tokenizer.cpp.o.d"
  "CMakeFiles/lc_text.dir/vocabulary.cpp.o"
  "CMakeFiles/lc_text.dir/vocabulary.cpp.o.d"
  "liblc_text.a"
  "liblc_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lc_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
