file(REMOVE_RECURSE
  "liblc_text.a"
)
