file(REMOVE_RECURSE
  "CMakeFiles/coarse_dendrogram.dir/coarse_dendrogram.cpp.o"
  "CMakeFiles/coarse_dendrogram.dir/coarse_dendrogram.cpp.o.d"
  "coarse_dendrogram"
  "coarse_dendrogram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coarse_dendrogram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
