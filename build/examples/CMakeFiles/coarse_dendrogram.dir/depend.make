# Empty dependencies file for coarse_dendrogram.
# This may be replaced when dependencies are built.
