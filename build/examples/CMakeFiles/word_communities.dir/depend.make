# Empty dependencies file for word_communities.
# This may be replaced when dependencies are built.
