file(REMOVE_RECURSE
  "CMakeFiles/word_communities.dir/word_communities.cpp.o"
  "CMakeFiles/word_communities.dir/word_communities.cpp.o.d"
  "word_communities"
  "word_communities.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/word_communities.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
