file(REMOVE_RECURSE
  "CMakeFiles/linkcluster_cli.dir/linkcluster_main.cpp.o"
  "CMakeFiles/linkcluster_cli.dir/linkcluster_main.cpp.o.d"
  "linkcluster"
  "linkcluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linkcluster_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
