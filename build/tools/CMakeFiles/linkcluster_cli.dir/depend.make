# Empty dependencies file for linkcluster_cli.
# This may be replaced when dependencies are built.
