file(REMOVE_RECURSE
  "liblc_bench_workloads.a"
)
