# Empty compiler generated dependencies file for lc_bench_workloads.
# This may be replaced when dependencies are built.
