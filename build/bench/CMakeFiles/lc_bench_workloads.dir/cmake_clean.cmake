file(REMOVE_RECURSE
  "CMakeFiles/lc_bench_workloads.dir/workloads.cpp.o"
  "CMakeFiles/lc_bench_workloads.dir/workloads.cpp.o.d"
  "liblc_bench_workloads.a"
  "liblc_bench_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lc_bench_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
