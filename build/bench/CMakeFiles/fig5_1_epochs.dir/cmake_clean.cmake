file(REMOVE_RECURSE
  "CMakeFiles/fig5_1_epochs.dir/fig5_1_epochs.cpp.o"
  "CMakeFiles/fig5_1_epochs.dir/fig5_1_epochs.cpp.o.d"
  "fig5_1_epochs"
  "fig5_1_epochs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_1_epochs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
