# Empty compiler generated dependencies file for fig5_1_epochs.
# This may be replaced when dependencies are built.
