file(REMOVE_RECURSE
  "CMakeFiles/ablation_reuse.dir/ablation_reuse.cpp.o"
  "CMakeFiles/ablation_reuse.dir/ablation_reuse.cpp.o.d"
  "ablation_reuse"
  "ablation_reuse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_reuse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
