# Empty dependencies file for appendix_complexity.
# This may be replaced when dependencies are built.
