file(REMOVE_RECURSE
  "CMakeFiles/appendix_complexity.dir/appendix_complexity.cpp.o"
  "CMakeFiles/appendix_complexity.dir/appendix_complexity.cpp.o.d"
  "appendix_complexity"
  "appendix_complexity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/appendix_complexity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
