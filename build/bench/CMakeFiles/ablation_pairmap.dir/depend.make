# Empty dependencies file for ablation_pairmap.
# This may be replaced when dependencies are built.
