file(REMOVE_RECURSE
  "CMakeFiles/ablation_pairmap.dir/ablation_pairmap.cpp.o"
  "CMakeFiles/ablation_pairmap.dir/ablation_pairmap.cpp.o.d"
  "ablation_pairmap"
  "ablation_pairmap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_pairmap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
