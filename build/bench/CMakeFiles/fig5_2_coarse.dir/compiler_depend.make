# Empty compiler generated dependencies file for fig5_2_coarse.
# This may be replaced when dependencies are built.
