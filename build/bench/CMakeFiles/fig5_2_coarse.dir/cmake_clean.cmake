file(REMOVE_RECURSE
  "CMakeFiles/fig5_2_coarse.dir/fig5_2_coarse.cpp.o"
  "CMakeFiles/fig5_2_coarse.dir/fig5_2_coarse.cpp.o.d"
  "fig5_2_coarse"
  "fig5_2_coarse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_2_coarse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
