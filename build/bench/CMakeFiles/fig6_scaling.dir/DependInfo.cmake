
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig6_scaling.cpp" "bench/CMakeFiles/fig6_scaling.dir/fig6_scaling.cpp.o" "gcc" "bench/CMakeFiles/fig6_scaling.dir/fig6_scaling.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/lc_bench_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/numeric/CMakeFiles/lc_numeric.dir/DependInfo.cmake"
  "/root/repo/build/src/cli/CMakeFiles/lc_cli.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/lc_text.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/lc_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/lc_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/lc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/lc_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/lc_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/lc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
