# Empty compiler generated dependencies file for fig2_3_mode_trace.
# This may be replaced when dependencies are built.
