# Empty dependencies file for fig2_2_sigmoid.
# This may be replaced when dependencies are built.
