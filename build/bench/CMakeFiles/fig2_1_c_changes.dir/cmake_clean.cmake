file(REMOVE_RECURSE
  "CMakeFiles/fig2_1_c_changes.dir/fig2_1_c_changes.cpp.o"
  "CMakeFiles/fig2_1_c_changes.dir/fig2_1_c_changes.cpp.o.d"
  "fig2_1_c_changes"
  "fig2_1_c_changes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_1_c_changes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
