# Empty dependencies file for fig2_1_c_changes.
# This may be replaced when dependencies are built.
