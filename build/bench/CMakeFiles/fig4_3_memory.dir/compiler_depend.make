# Empty compiler generated dependencies file for fig4_3_memory.
# This may be replaced when dependencies are built.
