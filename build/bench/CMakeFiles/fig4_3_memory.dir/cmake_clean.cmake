file(REMOVE_RECURSE
  "CMakeFiles/fig4_3_memory.dir/fig4_3_memory.cpp.o"
  "CMakeFiles/fig4_3_memory.dir/fig4_3_memory.cpp.o.d"
  "fig4_3_memory"
  "fig4_3_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_3_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
