file(REMOVE_RECURSE
  "CMakeFiles/fig4_2_serial_time.dir/fig4_2_serial_time.cpp.o"
  "CMakeFiles/fig4_2_serial_time.dir/fig4_2_serial_time.cpp.o.d"
  "fig4_2_serial_time"
  "fig4_2_serial_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_2_serial_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
