# Empty compiler generated dependencies file for fig4_2_serial_time.
# This may be replaced when dependencies are built.
