# Empty dependencies file for ablation_unionfind.
# This may be replaced when dependencies are built.
