file(REMOVE_RECURSE
  "CMakeFiles/ablation_unionfind.dir/ablation_unionfind.cpp.o"
  "CMakeFiles/ablation_unionfind.dir/ablation_unionfind.cpp.o.d"
  "ablation_unionfind"
  "ablation_unionfind.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_unionfind.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
