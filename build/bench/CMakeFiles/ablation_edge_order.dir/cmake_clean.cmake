file(REMOVE_RECURSE
  "CMakeFiles/ablation_edge_order.dir/ablation_edge_order.cpp.o"
  "CMakeFiles/ablation_edge_order.dir/ablation_edge_order.cpp.o.d"
  "ablation_edge_order"
  "ablation_edge_order.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_edge_order.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
