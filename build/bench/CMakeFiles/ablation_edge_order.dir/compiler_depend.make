# Empty compiler generated dependencies file for ablation_edge_order.
# This may be replaced when dependencies are built.
