# Empty dependencies file for core_hierarchy_test.
# This may be replaced when dependencies are built.
