file(REMOVE_RECURSE
  "CMakeFiles/core_hierarchy_test.dir/core/hierarchy_test.cpp.o"
  "CMakeFiles/core_hierarchy_test.dir/core/hierarchy_test.cpp.o.d"
  "core_hierarchy_test"
  "core_hierarchy_test.pdb"
  "core_hierarchy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_hierarchy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
