file(REMOVE_RECURSE
  "CMakeFiles/parallel_thread_pool_test.dir/parallel/thread_pool_test.cpp.o"
  "CMakeFiles/parallel_thread_pool_test.dir/parallel/thread_pool_test.cpp.o.d"
  "parallel_thread_pool_test"
  "parallel_thread_pool_test.pdb"
  "parallel_thread_pool_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_thread_pool_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
