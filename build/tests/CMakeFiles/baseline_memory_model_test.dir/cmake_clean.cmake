file(REMOVE_RECURSE
  "CMakeFiles/baseline_memory_model_test.dir/baseline/memory_model_test.cpp.o"
  "CMakeFiles/baseline_memory_model_test.dir/baseline/memory_model_test.cpp.o.d"
  "baseline_memory_model_test"
  "baseline_memory_model_test.pdb"
  "baseline_memory_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_memory_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
