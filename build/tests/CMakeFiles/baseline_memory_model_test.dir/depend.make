# Empty dependencies file for baseline_memory_model_test.
# This may be replaced when dependencies are built.
