file(REMOVE_RECURSE
  "CMakeFiles/text_vocabulary_test.dir/text/vocabulary_test.cpp.o"
  "CMakeFiles/text_vocabulary_test.dir/text/vocabulary_test.cpp.o.d"
  "text_vocabulary_test"
  "text_vocabulary_test.pdb"
  "text_vocabulary_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/text_vocabulary_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
