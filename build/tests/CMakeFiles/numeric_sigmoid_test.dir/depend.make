# Empty dependencies file for numeric_sigmoid_test.
# This may be replaced when dependencies are built.
