file(REMOVE_RECURSE
  "CMakeFiles/numeric_sigmoid_test.dir/numeric/sigmoid_test.cpp.o"
  "CMakeFiles/numeric_sigmoid_test.dir/numeric/sigmoid_test.cpp.o.d"
  "numeric_sigmoid_test"
  "numeric_sigmoid_test.pdb"
  "numeric_sigmoid_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/numeric_sigmoid_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
