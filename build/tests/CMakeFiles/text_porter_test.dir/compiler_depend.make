# Empty compiler generated dependencies file for text_porter_test.
# This may be replaced when dependencies are built.
