file(REMOVE_RECURSE
  "CMakeFiles/text_porter_test.dir/text/porter_test.cpp.o"
  "CMakeFiles/text_porter_test.dir/text/porter_test.cpp.o.d"
  "text_porter_test"
  "text_porter_test.pdb"
  "text_porter_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/text_porter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
