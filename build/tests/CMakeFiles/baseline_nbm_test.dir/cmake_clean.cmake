file(REMOVE_RECURSE
  "CMakeFiles/baseline_nbm_test.dir/baseline/nbm_test.cpp.o"
  "CMakeFiles/baseline_nbm_test.dir/baseline/nbm_test.cpp.o.d"
  "baseline_nbm_test"
  "baseline_nbm_test.pdb"
  "baseline_nbm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_nbm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
