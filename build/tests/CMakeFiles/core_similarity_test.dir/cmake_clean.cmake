file(REMOVE_RECURSE
  "CMakeFiles/core_similarity_test.dir/core/similarity_test.cpp.o"
  "CMakeFiles/core_similarity_test.dir/core/similarity_test.cpp.o.d"
  "core_similarity_test"
  "core_similarity_test.pdb"
  "core_similarity_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_similarity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
