# Empty dependencies file for text_association_test.
# This may be replaced when dependencies are built.
