file(REMOVE_RECURSE
  "CMakeFiles/text_association_test.dir/text/association_test.cpp.o"
  "CMakeFiles/text_association_test.dir/text/association_test.cpp.o.d"
  "text_association_test"
  "text_association_test.pdb"
  "text_association_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/text_association_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
