# Empty dependencies file for core_dendrogram_io_test.
# This may be replaced when dependencies are built.
