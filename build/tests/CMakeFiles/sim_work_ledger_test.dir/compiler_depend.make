# Empty compiler generated dependencies file for sim_work_ledger_test.
# This may be replaced when dependencies are built.
