file(REMOVE_RECURSE
  "CMakeFiles/sim_work_ledger_test.dir/sim/work_ledger_test.cpp.o"
  "CMakeFiles/sim_work_ledger_test.dir/sim/work_ledger_test.cpp.o.d"
  "sim_work_ledger_test"
  "sim_work_ledger_test.pdb"
  "sim_work_ledger_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_work_ledger_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
