file(REMOVE_RECURSE
  "CMakeFiles/core_coarse_test.dir/core/coarse_test.cpp.o"
  "CMakeFiles/core_coarse_test.dir/core/coarse_test.cpp.o.d"
  "core_coarse_test"
  "core_coarse_test.pdb"
  "core_coarse_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_coarse_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
