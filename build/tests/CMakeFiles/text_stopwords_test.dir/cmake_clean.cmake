file(REMOVE_RECURSE
  "CMakeFiles/text_stopwords_test.dir/text/stopwords_test.cpp.o"
  "CMakeFiles/text_stopwords_test.dir/text/stopwords_test.cpp.o.d"
  "text_stopwords_test"
  "text_stopwords_test.pdb"
  "text_stopwords_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/text_stopwords_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
