# Empty compiler generated dependencies file for core_dendrogram_test.
# This may be replaced when dependencies are built.
