file(REMOVE_RECURSE
  "CMakeFiles/numeric_least_squares_test.dir/numeric/least_squares_test.cpp.o"
  "CMakeFiles/numeric_least_squares_test.dir/numeric/least_squares_test.cpp.o.d"
  "numeric_least_squares_test"
  "numeric_least_squares_test.pdb"
  "numeric_least_squares_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/numeric_least_squares_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
