# Empty dependencies file for numeric_least_squares_test.
# This may be replaced when dependencies are built.
