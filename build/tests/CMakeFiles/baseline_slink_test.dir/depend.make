# Empty dependencies file for baseline_slink_test.
# This may be replaced when dependencies are built.
