file(REMOVE_RECURSE
  "CMakeFiles/baseline_slink_test.dir/baseline/slink_test.cpp.o"
  "CMakeFiles/baseline_slink_test.dir/baseline/slink_test.cpp.o.d"
  "baseline_slink_test"
  "baseline_slink_test.pdb"
  "baseline_slink_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_slink_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
