# Empty dependencies file for baseline_mst_test.
# This may be replaced when dependencies are built.
