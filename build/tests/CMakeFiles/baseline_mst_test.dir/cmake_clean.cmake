file(REMOVE_RECURSE
  "CMakeFiles/baseline_mst_test.dir/baseline/mst_test.cpp.o"
  "CMakeFiles/baseline_mst_test.dir/baseline/mst_test.cpp.o.d"
  "baseline_mst_test"
  "baseline_mst_test.pdb"
  "baseline_mst_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_mst_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
