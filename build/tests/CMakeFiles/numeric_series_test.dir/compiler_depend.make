# Empty compiler generated dependencies file for numeric_series_test.
# This may be replaced when dependencies are built.
