file(REMOVE_RECURSE
  "CMakeFiles/numeric_series_test.dir/numeric/series_test.cpp.o"
  "CMakeFiles/numeric_series_test.dir/numeric/series_test.cpp.o.d"
  "numeric_series_test"
  "numeric_series_test.pdb"
  "numeric_series_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/numeric_series_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
