file(REMOVE_RECURSE
  "CMakeFiles/text_corpus_test.dir/text/corpus_test.cpp.o"
  "CMakeFiles/text_corpus_test.dir/text/corpus_test.cpp.o.d"
  "text_corpus_test"
  "text_corpus_test.pdb"
  "text_corpus_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/text_corpus_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
