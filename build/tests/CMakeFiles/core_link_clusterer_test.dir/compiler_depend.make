# Empty compiler generated dependencies file for core_link_clusterer_test.
# This may be replaced when dependencies are built.
