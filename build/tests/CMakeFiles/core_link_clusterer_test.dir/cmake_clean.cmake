file(REMOVE_RECURSE
  "CMakeFiles/core_link_clusterer_test.dir/core/link_clusterer_test.cpp.o"
  "CMakeFiles/core_link_clusterer_test.dir/core/link_clusterer_test.cpp.o.d"
  "core_link_clusterer_test"
  "core_link_clusterer_test.pdb"
  "core_link_clusterer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_link_clusterer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
