file(REMOVE_RECURSE
  "CMakeFiles/core_coarse_param_test.dir/core/coarse_param_test.cpp.o"
  "CMakeFiles/core_coarse_param_test.dir/core/coarse_param_test.cpp.o.d"
  "core_coarse_param_test"
  "core_coarse_param_test.pdb"
  "core_coarse_param_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_coarse_param_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
