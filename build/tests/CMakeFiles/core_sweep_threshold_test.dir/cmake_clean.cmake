file(REMOVE_RECURSE
  "CMakeFiles/core_sweep_threshold_test.dir/core/sweep_threshold_test.cpp.o"
  "CMakeFiles/core_sweep_threshold_test.dir/core/sweep_threshold_test.cpp.o.d"
  "core_sweep_threshold_test"
  "core_sweep_threshold_test.pdb"
  "core_sweep_threshold_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_sweep_threshold_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
