# Empty compiler generated dependencies file for core_sweep_threshold_test.
# This may be replaced when dependencies are built.
