// Thin entry point for the `linkcluster` command-line tool; all logic lives
// in src/cli/commands.cpp so the test suite can exercise it directly.
#include <iostream>

#include "cli/commands.hpp"
#include "util/fault_inject.hpp"

int main(int argc, char** argv) {
#ifdef LC_FAULT_INJECT
  // Fault builds only: the kill/resume smoke test parks a child run
  // mid-sweep via the LC_FAULT_POINT environment variable.
  lc::fault::arm_from_env();
#endif
  return lc::cli::run_command(argc, argv, std::cout, std::cerr);
}
