// Thin entry point for the `linkcluster` command-line tool; all logic lives
// in src/cli/commands.cpp so the test suite can exercise it directly.
#include <cstdio>
#include <iostream>

#include "cli/commands.hpp"
#include "util/fault_inject.hpp"

int main(int argc, char** argv) {
  // Arm any LC_FAULT_PLAN / LC_FAULT_POINT from the environment. This is
  // unconditional: the runtime sites (memory.charge, the snapshot io.* seam)
  // fire in every build; phase-site clauses additionally need a
  // -DLC_FAULT_INJECT build to do anything.
  lc::fault::arm_from_env();
  // Line-buffer stdout even when piped: `serve` clients read one response
  // line per request, and the chaos harness drives the server through a
  // fifo — a block-buffered reply would deadlock it.
  std::setvbuf(stdout, nullptr, _IOLBF, 1 << 16);
  return lc::cli::run_command(argc, argv, std::cout, std::cerr);
}
