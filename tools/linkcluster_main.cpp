// Thin entry point for the `linkcluster` command-line tool; all logic lives
// in src/cli/commands.cpp so the test suite can exercise it directly.
#include <iostream>

#include "cli/commands.hpp"

int main(int argc, char** argv) {
  return lc::cli::run_command(argc, argv, std::cout, std::cerr);
}
