// Thin entry point for the `linkcluster` command-line tool; all logic lives
// in src/cli/commands.cpp so the test suite can exercise it directly.
#include <cstdio>
#include <iostream>

#include "cli/commands.hpp"
#include "util/fault_inject.hpp"

int main(int argc, char** argv) {
#ifdef LC_FAULT_INJECT
  // Fault builds only: the kill/resume smoke test parks a child run
  // mid-sweep via the LC_FAULT_POINT environment variable.
  lc::fault::arm_from_env();
#endif
  // Line-buffer stdout even when piped: `serve` clients read one response
  // line per request, and the chaos harness drives the server through a
  // fifo — a block-buffered reply would deadlock it.
  std::setvbuf(stdout, nullptr, _IOLBF, 1 << 16);
  return lc::cli::run_command(argc, argv, std::cout, std::cerr);
}
