#!/usr/bin/env bash
# Sanitizer CI sweep: builds the tree with -DLC_FAULT_INJECT=ON under ASan
# and then UBSan, and runs the full test suite (tier-1 tests plus the
# fault-injection suite) under each. A third leg builds under TSan and runs
# just the concurrency suites (the lock-free union-find stress test, the
# thread pool, and the coarse/parallel determinism tests) — the full suite
# under TSan is prohibitively slow and the serial tests cannot race. Any
# sanitizer report fails the build because CMakeLists.txt sets
# -fno-sanitize-recover=all.
#
# Usage: tools/ci_check.sh [build-dir-prefix]
#   build-dir-prefix defaults to "build-san"; per-sanitizer trees land in
#   <prefix>-address/, <prefix>-undefined/, and <prefix>-thread/.
set -euo pipefail

cd "$(dirname "$0")/.."
prefix="${1:-build-san}"
jobs="$(nproc 2>/dev/null || echo 4)"

for san in address undefined; do
  build_dir="${prefix}-${san}"
  echo "== ${san}: configure (${build_dir}) =="
  cmake -B "${build_dir}" -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DLC_SANITIZE="${san}" \
    -DLC_FAULT_INJECT=ON \
    -DLC_BUILD_BENCHES=OFF \
    -DLC_BUILD_EXAMPLES=OFF
  echo "== ${san}: build =="
  cmake --build "${build_dir}" -j "${jobs}"
  echo "== ${san}: test =="
  ctest --test-dir "${build_dir}" --output-on-failure -j "${jobs}"
done

build_dir="${prefix}-thread"
echo "== thread: configure (${build_dir}) =="
cmake -B "${build_dir}" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DLC_SANITIZE=thread \
  -DLC_BUILD_BENCHES=OFF \
  -DLC_BUILD_EXAMPLES=OFF
echo "== thread: build =="
cmake --build "${build_dir}" -j "${jobs}" \
  --target core_concurrent_dsu_test parallel_thread_pool_test \
           core_coarse_test core_similarity_determinism_test
echo "== thread: test (concurrency suites) =="
ctest --test-dir "${build_dir}" --output-on-failure -j "${jobs}" \
  -R 'ConcurrentDsu|ThreadPool|Coarse|Determinism'

echo "ci_check: all sanitizer suites passed"
