#!/usr/bin/env bash
# Sanitizer CI sweep: builds the tree with -DLC_FAULT_INJECT=ON under ASan
# and then UBSan, and runs the full test suite (tier-1 tests plus the
# fault-injection suite) under each. Any sanitizer report fails the build
# because CMakeLists.txt sets -fno-sanitize-recover=all.
#
# Usage: tools/ci_check.sh [build-dir-prefix]
#   build-dir-prefix defaults to "build-san"; per-sanitizer trees land in
#   <prefix>-address/ and <prefix>-undefined/.
set -euo pipefail

cd "$(dirname "$0")/.."
prefix="${1:-build-san}"
jobs="$(nproc 2>/dev/null || echo 4)"

for san in address undefined; do
  build_dir="${prefix}-${san}"
  echo "== ${san}: configure (${build_dir}) =="
  cmake -B "${build_dir}" -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DLC_SANITIZE="${san}" \
    -DLC_FAULT_INJECT=ON \
    -DLC_BUILD_BENCHES=OFF \
    -DLC_BUILD_EXAMPLES=OFF
  echo "== ${san}: build =="
  cmake --build "${build_dir}" -j "${jobs}"
  echo "== ${san}: test =="
  ctest --test-dir "${build_dir}" --output-on-failure -j "${jobs}"
done

echo "ci_check: all sanitizer suites passed"
