#!/usr/bin/env bash
# Sanitizer CI sweep: builds the tree with -DLC_FAULT_INJECT=ON under ASan
# and then UBSan, and runs the full test suite (tier-1 tests plus the
# fault-injection suite) under each. The UBSan leg additionally builds with
# -DLC_SIMD=OFF so the portable scalar/galloping intersect paths get a full
# sanitized run of their own. A third leg builds under TSan and runs
# just the concurrency suites (the lock-free union-find stress test, the
# thread pool, the coarse/parallel determinism tests, the checkpoint
# resume tests, which cross thread counts, and the sweep-source suite, whose
# lazy backend hands bucket sorts to a prefetch thread) — the full suite under TSan is
# prohibitively slow and the serial tests cannot race. Any sanitizer report
# fails the build because CMakeLists.txt sets -fno-sanitize-recover=all.
#
# A final smoke leg exercises the crash/resume path end to end with the ASan
# CLI binary: a fault-injected sleep parks a checkpointing run mid-sweep,
# SIGKILL tears it down, and a --resume run must reproduce the uninterrupted
# dendrogram byte for byte. Both the fine and the coarse mode machines get a
# kill.
#
# Usage: tools/ci_check.sh [build-dir-prefix]
#   build-dir-prefix defaults to "build-san"; per-sanitizer trees land in
#   <prefix>-address/, <prefix>-undefined/, and <prefix>-thread/.
set -euo pipefail

cd "$(dirname "$0")/.."
prefix="${1:-build-san}"
jobs="$(nproc 2>/dev/null || echo 4)"

for san in address undefined; do
  build_dir="${prefix}-${san}"
  # The undefined leg doubles as the portable-fallback leg: -DLC_SIMD=OFF
  # compiles out the SSE/AVX2 intersect kernels, so the scalar and galloping
  # paths (and the forced-kSimd graceful degradation) run the full suite
  # under UBSan while the address leg covers the SIMD kernels.
  simd_flag=ON
  [ "${san}" = undefined ] && simd_flag=OFF
  echo "== ${san}: configure (${build_dir}, LC_SIMD=${simd_flag}) =="
  cmake -B "${build_dir}" -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DLC_SANITIZE="${san}" \
    -DLC_FAULT_INJECT=ON \
    -DLC_SIMD="${simd_flag}" \
    -DLC_BUILD_BENCHES=OFF \
    -DLC_BUILD_EXAMPLES=OFF
  echo "== ${san}: build =="
  cmake --build "${build_dir}" -j "${jobs}"
  echo "== ${san}: test =="
  ctest --test-dir "${build_dir}" --output-on-failure -j "${jobs}"
done

build_dir="${prefix}-thread"
echo "== thread: configure (${build_dir}) =="
cmake -B "${build_dir}" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DLC_SANITIZE=thread \
  -DLC_BUILD_BENCHES=OFF \
  -DLC_BUILD_EXAMPLES=OFF
echo "== thread: build =="
cmake --build "${build_dir}" -j "${jobs}" \
  --target core_concurrent_dsu_test parallel_thread_pool_test \
           core_coarse_test core_similarity_determinism_test \
           core_similarity_gather_test core_checkpoint_test \
           core_sweep_source_test serve_server_test
echo "== thread: test (concurrency suites) =="
# The serve suite rides along: every test crosses the RunSupervisor's
# worker-thread handoff (launch/report/wait/cancel from the protocol thread
# against the run on the worker), which is exactly what TSan is for.
ctest --test-dir "${build_dir}" --output-on-failure -j "${jobs}" \
  -R 'ConcurrentDsu|ThreadPool|Coarse|Determinism|Gather|Checkpoint|SweepSource|ServerTest|Signals|RunSupervisor'

# ---- Kill/resume smoke: crash a checkpointing run with SIGKILL, resume it,
# and demand the dendrogram the crash interrupted. Uses the ASan binary so
# the replayed sweep is also sanitized. The LC_FAULT_POINT sleep parks the
# run inside the sweep after enough chunk boundaries have committed
# snapshots, which makes the kill deterministic without racing the sweep.
smoke() {
  local mode="$1" fault="$2"; shift 2
  local work
  work="$(mktemp -d)"
  local bin="${prefix}-address/tools/linkcluster"
  echo "== smoke: ${mode} kill/resume (${work}) =="
  "${bin}" generate --type er --n 600 --p 0.02 --seed 7 --output "${work}/g.edges"
  "${bin}" cluster --input "${work}/g.edges" --mode "${mode}" "$@" \
    --merges "${work}/ref.merges"
  LC_FAULT_POINT="${fault}" \
    "${bin}" cluster --input "${work}/g.edges" --mode "${mode}" "$@" \
      --checkpoint-dir "${work}/ckpt" --checkpoint-every-ms 0 \
      --merges "${work}/killed.merges" &
  local pid=$!
  local snapshot="${work}/ckpt/checkpoint.lcsnap"
  for _ in $(seq 1 300); do
    [ -f "${snapshot}" ] && break
    sleep 0.1
  done
  kill -9 "${pid}" 2>/dev/null || true
  wait "${pid}" 2>/dev/null || true
  if [ ! -f "${snapshot}" ]; then
    echo "smoke: no snapshot appeared before the kill (${mode})" >&2
    exit 1
  fi
  "${bin}" cluster --input "${work}/g.edges" --mode "${mode}" "$@" \
    --checkpoint-dir "${work}/ckpt" --resume --merges "${work}/resumed.merges"
  cmp "${work}/ref.merges" "${work}/resumed.merges"
  echo "smoke: ${mode} resume reproduced the uninterrupted dendrogram"
  rm -rf "${work}"
}

# Fine: sleep after 400 entry boundaries — hundreds of snapshots are already
# on disk by then. Coarse: the loop head commits a snapshot before each
# coarse.chunk hit, so three skips guarantee one. The default sweep backend
# is lazy, so these two legs kill and resume bucketed lazy-sort runs — the
# resume lands mid-bucket and must skip the sorts of every bucket before it.
smoke fine  "sweep.entry:sleep:400:60000"
smoke coarse "coarse.chunk:sleep:3:60000" --delta0 32
# The sorted backend stays selectable; keep its kill/resume path covered too.
smoke fine  "sweep.entry:sleep:400:60000" --sweep-backend sorted

# ---- Batch SIGTERM smoke: a termination signal must turn into a cooperative
# cancel (exit 3), leave a final checkpoint behind, and --resume must finish
# the run byte for byte. The park is short (1 s) because sleep_for resumes
# after EINTR — the signal is observed at the next entry boundary, not
# mid-sleep.
sigterm_smoke() {
  local work
  work="$(mktemp -d)"
  local bin="${prefix}-address/tools/linkcluster"
  echo "== smoke: batch SIGTERM -> final checkpoint -> resume (${work}) =="
  "${bin}" generate --type er --n 600 --p 0.02 --seed 7 --output "${work}/g.edges"
  "${bin}" cluster --input "${work}/g.edges" --merges "${work}/ref.merges"
  LC_FAULT_POINT="sweep.entry:sleep:400:1000" \
    "${bin}" cluster --input "${work}/g.edges" \
      --checkpoint-dir "${work}/ckpt" --checkpoint-every-ms 0 \
      --merges "${work}/killed.merges" &
  local pid=$!
  local snapshot="${work}/ckpt/checkpoint.lcsnap"
  for _ in $(seq 1 300); do
    [ -f "${snapshot}" ] && break
    sleep 0.1
  done
  if [ ! -f "${snapshot}" ]; then
    echo "sigterm smoke: no snapshot appeared before the signal" >&2
    exit 1
  fi
  kill -TERM "${pid}"
  local rc=0
  wait "${pid}" || rc=$?
  if [ "${rc}" -ne 3 ]; then
    echo "sigterm smoke: expected exit 3 (cancelled), got ${rc}" >&2
    exit 1
  fi
  "${bin}" cluster --input "${work}/g.edges" \
    --checkpoint-dir "${work}/ckpt" --resume --merges "${work}/resumed.merges"
  cmp "${work}/ref.merges" "${work}/resumed.merges"
  echo "sigterm smoke: resume after SIGTERM reproduced the dendrogram"
  rm -rf "${work}"
}
sigterm_smoke

# ---- Serve chaos: the scripted sequence from DESIGN.md §14. One server
# takes a failed run (deadline trips) and must keep serving; a second is
# SIGKILLed mid-sweep and a restart on the same --checkpoint-dir must
# autorecover the interrupted run and write the byte-identical merge list.
# Uses the ASan binary throughout so both server lifetimes are sanitized.
serve_chaos() {
  local work
  work="$(mktemp -d)"
  local bin="${prefix}-address/tools/linkcluster"
  echo "== smoke: serve containment + kill/autorecover (${work}) =="
  "${bin}" generate --type er --n 600 --p 0.02 --seed 7 --output "${work}/g.edges"
  "${bin}" cluster --input "${work}/g.edges" --merges "${work}/ref.merges"

  # Leg 1 — containment: a deadline-tripped run comes back as a structured
  # error and the same session immediately serves the next run to completion.
  printf 'load path=%s\nrun deadline_ms=0\nwait\nrun merges=%s\nwait\nhealth\nshutdown\n' \
      "${work}/g.edges" "${work}/ok.merges" \
    | "${bin}" serve > "${work}/contain.out" 2> "${work}/contain.err"
  grep -q 'state=failed.*code=deadline_exceeded class=resource' "${work}/contain.out"
  grep -q 'runs_total=2 runs_failed=1' "${work}/contain.out"
  cmp "${work}/ref.merges" "${work}/ok.merges"
  echo "serve smoke: failed run contained, server kept serving"

  # Leg 2 — crash autorecovery: park the supervised run mid-sweep (snapshots
  # already on disk), SIGKILL the server, restart it on the same checkpoint
  # dir, and let startup autorecovery finish the run. The fifo keeps the
  # first server's stdin open while it is parked.
  mkfifo "${work}/in"
  LC_FAULT_POINT="sweep.entry:sleep:400:60000" \
    "${bin}" serve --checkpoint-dir "${work}/ckpt" --checkpoint-every-ms 0 \
      < "${work}/in" > "${work}/serve1.out" 2> "${work}/serve1.err" &
  local pid=$!
  exec 9> "${work}/in"
  printf 'load path=%s\nrun merges=%s\n' \
    "${work}/g.edges" "${work}/recovered.merges" >&9
  local snapshot="${work}/ckpt/checkpoint.lcsnap"
  for _ in $(seq 1 300); do
    [ -f "${snapshot}" ] && break
    sleep 0.1
  done
  kill -9 "${pid}" 2>/dev/null || true
  wait "${pid}" 2>/dev/null || true
  exec 9>&-
  if [ ! -f "${snapshot}" ]; then
    echo "serve smoke: no snapshot appeared before the kill" >&2
    exit 1
  fi
  if [ ! -f "${work}/ckpt/run.manifest" ]; then
    echo "serve smoke: the killed server left no run manifest" >&2
    exit 1
  fi
  printf 'wait\nhealth\nshutdown\n' \
    | "${bin}" serve --checkpoint-dir "${work}/ckpt" \
        > "${work}/serve2.out" 2> "${work}/serve2.err"
  grep -q 'recovered=1' "${work}/serve2.out"
  cmp "${work}/ref.merges" "${work}/recovered.merges"
  if [ -f "${work}/ckpt/run.manifest" ]; then
    echo "serve smoke: autorecovery left the manifest behind after success" >&2
    exit 1
  fi
  echo "serve smoke: SIGKILL mid-sweep autorecovered byte-identically"
  rm -rf "${work}"
}
serve_chaos

# ---- Randomized chaos leg: the built-in torture harness (`lc chaos`) runs a
# fixed block of seeded schedules — randomized fault plans against cluster and
# serve children, including SIGKILL mid-run and snapshot corruption — with the
# ASan binary, so every recovery path the schedules reach is sanitized. The
# seed is pinned: a failure here replays exactly with
#   linkcluster chaos --seed <N> --schedules 1 --keep
chaos_leg() {
  local bin="${prefix}-address/tools/linkcluster"
  echo "== chaos: 12 seeded schedules (ASan binary) =="
  "${bin}" chaos --seed 1000 --schedules 12
}
chaos_leg

echo "ci_check: all sanitizer suites, kill/resume, SIGTERM, serve chaos, and seeded chaos schedules passed"
